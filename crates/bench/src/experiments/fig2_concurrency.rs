//! Fig 2 — throughput, power, and energy vs concurrency.
//!
//! The motivating figure for concurrency throttling: on the 32-core
//! simulated machine, sweep the thread cap from 1 to 32 for a
//! memory-bound (stencil) and a compute-bound workload. Expected shape:
//!
//! * compute-bound throughput rises ~linearly to 32 cores; its
//!   energy-per-work *falls* with cores (static power amortized), so the
//!   EDP optimum is the full machine;
//! * memory-bound throughput saturates at the bandwidth knee (~6 cores
//!   for the default spec); power keeps rising linearly past the knee, so
//!   energy and EDP have a minimum near the knee — the headroom
//!   throttling exploits.

use crate::experiments::common::measure_cap;
use crate::report::{fmt_f, write_csv, Table};
use lg_sim::{MachineSpec, SimWorkload};

/// Runs the experiment.
pub fn run(fast: bool) {
    let spec = MachineSpec::server32();
    let steps = if fast { 2 } else { 10 };
    let (stencil, compute) = workloads(fast);

    let mut table = Table::new(
        "Fig 2: throughput / power / energy vs thread cap (32-core sim)",
        &[
            "workload",
            "cap",
            "ops_per_sec",
            "mean_power_w",
            "energy_j",
            "edp",
        ],
    );
    let caps: Vec<usize> = if fast {
        vec![1, 2, 4, 8, 16, 32]
    } else {
        (1..=32).collect()
    };
    for (name, w) in [("stencil(mem)", &stencil), ("compute", &compute)] {
        for &cap in &caps {
            let m = measure_cap(&spec, w, cap, steps);
            table.row(&[
                name.to_string(),
                cap.to_string(),
                fmt_f(m.ops_per_sec),
                fmt_f(m.mean_power_w),
                fmt_f(m.energy_j),
                fmt_f(m.edp()),
            ]);
        }
    }
    println!("{}", table.render());
    let path = write_csv(&table, "fig2_concurrency");
    println!("wrote {}\n", path.display());
}

fn workloads(fast: bool) -> (SimWorkload, SimWorkload) {
    let ops = if fast { 1e8 } else { 1e9 };
    (SimWorkload::stencil(ops, 64), SimWorkload::compute(ops, 64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::measure_cap;

    #[test]
    fn shapes_hold() {
        let spec = MachineSpec::server32();
        let (stencil, compute) = workloads(true);
        // Compute-bound: 32 cores ≥ ~7× the 4-core throughput.
        let c4 = measure_cap(&spec, &compute, 4, 2);
        let c32 = measure_cap(&spec, &compute, 32, 2);
        assert!(c32.ops_per_sec > c4.ops_per_sec * 7.0);
        // Memory-bound: 32 cores ≈ 8-core throughput (saturated)...
        let m8 = measure_cap(&spec, &stencil, 8, 2);
        let m32 = measure_cap(&spec, &stencil, 32, 2);
        assert!(m32.ops_per_sec < m8.ops_per_sec * 1.1);
        // ...but costs much more energy.
        assert!(m32.energy_j > m8.energy_j * 1.5);
    }

    #[test]
    fn runs_fast() {
        run(true);
    }
}
