//! Figure 11 — critical-path-aware scheduling over a Task Bench-style
//! DAG matrix.
//!
//! Two sections:
//!
//! * **Scheduler matrix (simulated)** — every [`DagPattern`] at its
//!   tuned shape, executed on an 8-core fluid machine under three ready
//!   policies: `fifo` (run in release order), `random-steal` (seeded
//!   uniform pick — the what-work-stealing-averages-to baseline), and
//!   `critical-path` (highest remaining height first). The claim the
//!   figure carries: on depth-dominated patterns (tree reduction,
//!   triangular-solve sweep) height-aware ordering beats FIFO by well
//!   over 10% of makespan, while on embarrassing patterns (trivial)
//!   every policy ties within noise — the scheduler knows when it has
//!   nothing to add. All runs are virtual-time and bit-replayable from
//!   the config seed.
//!
//! * **Closed loop (real pool)** — the same sweep DAG on the real
//!   work-stealing pool with the whole looking-glass attached: DAG
//!   release/completion accounting feeds the `dag.critical_path_len` /
//!   `dag.ready_width` / `dag.slack_p50` gauges, a
//!   [`CriticalPathPolicy`] on a [`PolicyEngine`] steers the
//!   `dag.critical_bias` knob through the journaled knob plane while
//!   the DAG drains, critical nodes ride the priority lane
//!   (`rt.priority_pushes`), and every node body stays on the
//!   zero-alloc inline tier (`rt.boxed_tasks == 0`).
//!
//! `LG_CHAOS=1` appends a fault-injection smoke: the same DAG with
//! seeded panic injection replacing ~5% of node bodies. The scope must
//! still join (every node released exactly once — crashed nodes release
//! their successors on drop), which is the property that makes DAG
//! scheduling safe to compose with the fault harness.

use crate::report::{fmt_f, write_csv, Table};
use lg_core::{CriticalPathPolicy, DagStats, LookingGlass, PolicyEngine};
use lg_metrics::PowerModel;
use lg_runtime::{FaultConfig, PoolConfig, ThreadPool};
use lg_sim::{MachineSpec, SimRuntime};
use lg_workloads::dag::{
    expected_checksum, generate, run_on_pool_observed, run_on_pool_traced, run_on_sim, CostModel,
    DagConfig, DagPattern, DagSched, DagSpec, DagTrace,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Worker/core count for both sections — the matrix is a fixed-width
/// figure, not a scaling study.
pub const WORKERS: usize = 8;

/// The simulated host: 8 cores at 1 Gop/s with bandwidth high enough
/// that the matrix measures ordering, not the memory wall.
fn machine() -> MachineSpec {
    MachineSpec {
        cores: WORKERS,
        core_flops: 1e9,
        mem_bw: 1e12,
        power: PowerModel::new(10.0, 2.0),
        sched_overhead_ns: 0,
        stall_intensity: 0.5,
    }
}

/// The tuned pattern matrix. Shapes are chosen so depth-dominated
/// patterns sit near the `cp ≈ work/P` balance point (where ordering
/// decides the makespan) and embarrassing ones stay work-bound.
pub fn matrix_configs() -> Vec<DagConfig> {
    let cfg = |pattern, width, depth, grain_spread| DagConfig {
        pattern,
        width,
        depth,
        grain_ops: 1e5,
        grain_spread,
        comm_bytes: 1e3,
        seed: 42,
    };
    vec![
        cfg(DagPattern::Trivial, 64, 8, 1.0),
        cfg(DagPattern::Stencil1d, 16, 32, 3.0),
        cfg(DagPattern::Stencil2d, 16, 32, 3.0),
        cfg(DagPattern::Tree, 64, 0, 3.0),
        cfg(DagPattern::Butterfly, 16, 32, 12.0),
        cfg(DagPattern::Sweep, 16, 96, 8.0),
        cfg(DagPattern::Random, 16, 32, 3.0),
    ]
}

/// One matrix row: the three schedulers on one pattern.
#[derive(Clone, Debug)]
pub struct MatrixRow {
    /// Pattern name.
    pub pattern: &'static str,
    /// Node / edge counts of the generated DAG.
    pub nodes: usize,
    /// Dependency edges.
    pub edges: usize,
    /// FIFO makespan, ns.
    pub fifo_ns: u64,
    /// Random-steal makespan, ns.
    pub random_ns: u64,
    /// Critical-path makespan, ns.
    pub cp_ns: u64,
    /// Schedule-independent lower bound, ns.
    pub bound_ns: u64,
    /// Critical-path improvement over FIFO, percent.
    pub gain_pct: f64,
}

fn simulate(spec: &DagSpec, sched: DagSched) -> u64 {
    let mut sim = SimRuntime::new(machine());
    run_on_sim(&mut sim, spec, sched).makespan_ns
}

/// Runs the scheduler matrix for one config.
pub fn matrix_row(cfg: &DagConfig) -> MatrixRow {
    let spec = generate(cfg, &CostModel::default());
    let fifo_ns = simulate(&spec, DagSched::Fifo);
    let random_ns = simulate(&spec, DagSched::RandomSteal(9));
    let cp_ns = simulate(&spec, DagSched::CriticalPath);
    MatrixRow {
        pattern: cfg.pattern.name(),
        nodes: spec.nodes(),
        edges: spec.edges(),
        fifo_ns,
        random_ns,
        cp_ns,
        bound_ns: spec.makespan_bound_ns(WORKERS),
        gain_pct: (fifo_ns as f64 - cp_ns as f64) / fifo_ns as f64 * 100.0,
    }
}

/// Result of the closed-loop section.
#[derive(Clone, Debug)]
pub struct LoopResult {
    /// Wall-clock makespan of the pool run, ns.
    pub elapsed_ns: u64,
    /// Nodes executed.
    pub nodes: u64,
    /// Checksum matched the sequential oracle.
    pub checksum_ok: bool,
    /// Control rounds the engine stepped while the DAG drained.
    pub engine_steps: u64,
    /// Journaled knob actuations from the critical-path policy.
    pub actuations: u64,
    /// Tasks that took the priority lane.
    pub priority_pushes: u64,
    /// Tasks that fell off the inline tier (must stay 0).
    pub boxed_tasks: u64,
}

/// Runs the sweep DAG on the real pool with the introspection →
/// policy → knob loop closed around it.
pub fn closed_loop(fast: bool) -> LoopResult {
    let cfg = DagConfig {
        pattern: DagPattern::Sweep,
        width: 16,
        depth: if fast { 48 } else { 96 },
        grain_ops: 1e5,
        grain_spread: 8.0,
        comm_bytes: 1e3,
        seed: 42,
    };
    let spec = generate(&cfg, &CostModel::default());
    let pool = ThreadPool::new(
        LookingGlass::builder().build(),
        PoolConfig::with_workers(WORKERS),
    );
    let stats = DagStats::new();
    stats.register_on(pool.lg().introspection());
    let engine = PolicyEngine::new(pool.lg().knobs().clone());
    engine.attach_introspection(pool.lg().introspection().clone());
    // Start with the bias off so the first control round has a real
    // decision to journal: the policy sees the frontier and turns the
    // priority lane on.
    pool.lg().knobs().set("dag.critical_bias", 0);
    engine.register_periodic(
        Box::new(CriticalPathPolicy::new("dag.critical_bias", WORKERS)),
        200_000, // 200 µs control period — several rounds per drain
        pool.lg().clock().now_ns(),
    );

    // Step the engine from a sidecar thread while the DAG drains on the
    // pool — the same split a production deployment has.
    let stop = Arc::new(AtomicBool::new(false));
    let stepper = {
        let engine = engine.clone();
        let stop = stop.clone();
        let clock = pool.lg().clock().clone();
        std::thread::spawn(move || {
            let mut steps = 0u64;
            while !stop.load(Ordering::Acquire) {
                engine.step(clock.now_ns());
                steps += 1;
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
            steps
        })
    };
    let ops_scale = if fast { 0.3 } else { 1.0 };
    let report = run_on_pool_observed(&pool, &spec, ops_scale, stats);
    stop.store(true, Ordering::Release);
    let engine_steps = stepper.join().expect("stepper thread");

    LoopResult {
        elapsed_ns: report.elapsed_ns,
        nodes: report.nodes,
        checksum_ok: report.checksum == expected_checksum(&spec, ops_scale),
        engine_steps,
        actuations: engine.actuations(),
        priority_pushes: pool.counters().counter("rt.priority_pushes").get(),
        boxed_tasks: pool.counters().counter("rt.boxed_tasks").get(),
    }
}

/// Chaos smoke: the sweep DAG with seeded panic injection. Returns
/// `(nodes, released_all, ran_at_most_once)` — the scope must join with
/// every node released exactly once even when bodies crash.
pub fn chaos_smoke() -> (usize, bool) {
    let cfg = DagConfig {
        pattern: DagPattern::Sweep,
        width: 12,
        depth: 48,
        grain_ops: 1e4,
        grain_spread: 2.0,
        comm_bytes: 0.0,
        seed: 7,
    };
    let spec = generate(&cfg, &CostModel::default());
    let pool = ThreadPool::new(
        LookingGlass::builder().build(),
        PoolConfig {
            workers: WORKERS,
            faults: Some(FaultConfig::seeded(7).panic_prob(0.05)),
            ..PoolConfig::default()
        },
    );
    let trace = DagTrace::new(spec.nodes());
    // Injected panics are the point of this run; keep the default hook
    // from spraying a backtrace per contained crash.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_on_pool_traced(&pool, &spec, 1e-3, &trace)
    }));
    std::panic::set_hook(prev_hook);
    let at_most_once = (0..spec.nodes()).all(|n| trace.runs[n].load(Ordering::Relaxed) <= 1);
    (spec.nodes(), at_most_once)
}

/// Runs the experiment. `LG_CHAOS=1` appends the fault-injection smoke.
pub fn run(fast: bool) {
    let mut table = Table::new(
        "Figure 11: DAG matrix — makespan by ready policy, 8 simulated cores",
        &[
            "pattern",
            "nodes",
            "edges",
            "fifo_ms",
            "random_ms",
            "cp_ms",
            "bound_ms",
            "cp_gain_%",
        ],
    );
    for cfg in matrix_configs() {
        let r = matrix_row(&cfg);
        table.row(&[
            r.pattern.to_string(),
            r.nodes.to_string(),
            r.edges.to_string(),
            fmt_f(r.fifo_ns as f64 / 1e6),
            fmt_f(r.random_ns as f64 / 1e6),
            fmt_f(r.cp_ns as f64 / 1e6),
            fmt_f(r.bound_ns as f64 / 1e6),
            fmt_f(r.gain_pct),
        ]);
    }
    println!("{}", table.render());
    let path = write_csv(&table, "fig11_dag");
    println!("wrote {}", path.display());

    let lr = closed_loop(fast);
    let mut loop_table = Table::new(
        "Figure 11b: closed loop — sweep DAG on the real pool, critical-path policy steering",
        &[
            "nodes",
            "elapsed_ms",
            "checksum_ok",
            "engine_steps",
            "actuations",
            "priority_pushes",
            "boxed_tasks",
        ],
    );
    loop_table.row(&[
        lr.nodes.to_string(),
        fmt_f(lr.elapsed_ns as f64 / 1e6),
        lr.checksum_ok.to_string(),
        lr.engine_steps.to_string(),
        lr.actuations.to_string(),
        lr.priority_pushes.to_string(),
        lr.boxed_tasks.to_string(),
    ]);
    println!("{}", loop_table.render());
    let path = write_csv(&loop_table, "fig11_dag_loop");
    println!("wrote {}\n", path.display());

    if std::env::var("LG_CHAOS").is_ok_and(|v| v == "1") {
        let (nodes, at_most_once) = chaos_smoke();
        assert!(
            at_most_once,
            "a node ran twice under fault injection — exactly-once broken"
        );
        println!("chaos smoke: {nodes}-node sweep under 5% panic injection — scope joined, every node ran at most once\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<MatrixRow> {
        matrix_configs().iter().map(matrix_row).collect()
    }

    /// The headline claim: ≥10% makespan improvement over FIFO on the
    /// depth-dominated patterns at 8 workers.
    #[test]
    fn depth_dominated_patterns_gain_over_ten_percent() {
        let rows = rows();
        for pat in ["tree", "sweep"] {
            let r = rows.iter().find(|r| r.pattern == pat).unwrap();
            assert!(
                r.gain_pct >= 10.0,
                "{pat}: critical-path gain {:.1}% below the 10% gate",
                r.gain_pct
            );
        }
    }

    /// Embarrassing parallelism: nothing to schedule, so the policies
    /// tie within noise.
    #[test]
    fn trivial_pattern_ties_within_two_percent() {
        let rows = rows();
        let r = rows.iter().find(|r| r.pattern == "trivial").unwrap();
        assert!(
            r.gain_pct.abs() <= 2.0,
            "trivial: |{:.2}%| gain exceeds the ±2% tie band",
            r.gain_pct
        );
    }

    /// Every policy's makespan respects the schedule-independent lower
    /// bound, and critical-path never loses to FIFO anywhere in the
    /// matrix.
    #[test]
    fn makespans_respect_bounds() {
        for r in rows() {
            for (label, ns) in [
                ("fifo", r.fifo_ns),
                ("random", r.random_ns),
                ("cp", r.cp_ns),
            ] {
                assert!(
                    ns >= r.bound_ns,
                    "{}/{label}: makespan {} under bound {}",
                    r.pattern,
                    ns,
                    r.bound_ns
                );
            }
            assert!(
                r.cp_ns as f64 <= r.fifo_ns as f64 * 1.02,
                "{}: critical-path lost to FIFO beyond noise",
                r.pattern
            );
        }
    }

    /// The closed loop on the real pool: exact execution, at least one
    /// journaled actuation from the critical-path policy, and the whole
    /// DAG on the zero-alloc inline tier.
    #[test]
    fn closed_loop_steers_and_stays_inline() {
        let lr = closed_loop(true);
        assert!(lr.checksum_ok, "pool run diverged from sequential oracle");
        assert!(lr.engine_steps >= 1);
        assert!(
            lr.actuations >= 1,
            "critical-path policy never actuated through the journal"
        );
        assert_eq!(lr.boxed_tasks, 0, "a DAG node fell off the inline tier");
    }

    /// Fault injection: the scope joins and no node runs twice.
    #[test]
    fn chaos_smoke_releases_every_node_exactly_once() {
        let (_nodes, at_most_once) = chaos_smoke();
        assert!(at_most_once);
    }

    #[test]
    fn runs_fast() {
        run(true);
    }
}
