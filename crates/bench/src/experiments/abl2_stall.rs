//! Ablation 2 — sensitivity to the stall-intensity floor.
//!
//! The power model's one free parameter is how much dynamic power an
//! active-but-stalled core burns (DESIGN.md §2). This ablation sweeps the
//! floor and reports the EDP-optimal cap for the memory-bound workload at
//! each setting. Expected: at floor 0 stalled cores are free, so the
//! optimum sits at full concurrency; as the floor rises, the optimum
//! moves to the bandwidth knee. The *existence* of an interior optimum —
//! all the adaptation results need — holds for every nonzero floor.

use crate::experiments::common::{best_static_cap, measure_cap};
use crate::report::{fmt_f, write_csv, Table};
use lg_sim::{MachineSpec, SimWorkload};

/// Runs the experiment.
pub fn run(fast: bool) {
    let ops = if fast { 5e7 } else { 5e8 };
    let steps = if fast { 1 } else { 4 };
    let w = SimWorkload::stencil(ops, 64);
    let mut table = Table::new(
        "Ablation 2: EDP-optimal cap vs stall-intensity floor (stencil)",
        &[
            "stall_floor",
            "optimal_cap",
            "edp_at_opt",
            "edp_at_32",
            "penalty_at_32",
        ],
    );
    for &floor in &[0.0f64, 0.25, 0.5, 0.75, 1.0] {
        let mut spec = MachineSpec::server32();
        spec.stall_intensity = floor;
        let (cap, edp_opt) = best_static_cap(&spec, &w, steps);
        let m32 = measure_cap(&spec, &w, 32, steps);
        table.row(&[
            format!("{floor:.2}"),
            cap.to_string(),
            fmt_f(edp_opt),
            fmt_f(m32.edp()),
            format!("{:+.0}%", (m32.edp() / edp_opt - 1.0) * 100.0),
        ]);
    }
    println!("{}", table.render());
    let path = write_csv(&table, "abl2_stall");
    println!("wrote {}\n", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_moves_to_knee_as_floor_rises() {
        let w = SimWorkload::stencil(5e7, 64);
        let opt_at = |floor: f64| {
            let mut spec = MachineSpec::server32();
            spec.stall_intensity = floor;
            best_static_cap(&spec, &w, 1).0
        };
        let free_stalls = opt_at(0.0);
        let real_stalls = opt_at(0.5);
        let full_burn = opt_at(1.0);
        assert!(
            free_stalls > real_stalls,
            "free stalls should allow more cores: {free_stalls} vs {real_stalls}"
        );
        assert!(real_stalls >= full_burn, "{real_stalls} vs {full_burn}");
        // With any nonzero floor the optimum is interior (below 32).
        assert!(real_stalls < 32);
        assert!(full_burn < 32);
    }

    #[test]
    fn runs_fast() {
        run(true);
    }
}
