//! Regenerates the tables and figures of the reconstructed evaluation.
//!
//! Usage: `experiments <fig1|fig2|fig3|fig4|fig5|fig6|fig7|tbl1|tbl2|tbl3|all> [--fast]`

fn main() {
    lg_bench::experiments::main();
}
