//! Criterion benches for the control plane's steady state: knob get/set
//! (name-based vs interned id), contended multi-thread set scaling, and
//! introspection snapshot capture.
//!
//! The refactor's claims, measurable here:
//! * id-based set is no slower than the old name-based path
//!   single-threaded (it skips the string hash);
//! * per-knob write locks keep distinct-knob set throughput flat from
//!   1 → 8 threads (no registry-wide lock on the hot path);
//! * snapshot capture is cheap enough to run per policy round.

use criterion::{criterion_group, criterion_main, Criterion};
use lg_core::concurrency::ConcurrencyListener;
use lg_core::event::{Event, TaskNames};
use lg_core::knob::{AtomicKnob, KnobSpec};
use lg_core::listener::Listener as _;
use lg_core::profile::ProfileListener;
use lg_core::snapshot::Introspection;
use lg_core::KnobRegistry;
use std::sync::Arc;

fn bench_knob_access(c: &mut Criterion) {
    let knobs = KnobRegistry::new();
    let id = knobs.register(AtomicKnob::new(KnobSpec::new("k", 0, 1_000_000), 0));
    c.bench_function("knob_get_by_name", |b| {
        b.iter(|| std::hint::black_box(knobs.value("k")))
    });
    c.bench_function("knob_get_by_id", |b| {
        b.iter(|| std::hint::black_box(knobs.value_id(id)))
    });
    let mut v = 0i64;
    c.bench_function("knob_set_by_name", |b| {
        b.iter(|| {
            v += 1;
            knobs.set("k", std::hint::black_box(v));
        })
    });
    c.bench_function("knob_set_by_id", |b| {
        b.iter(|| {
            v += 1;
            knobs.set_id(id, std::hint::black_box(v));
        })
    });
}

/// Distinct-knob sets from N threads: with per-knob write locks this
/// should stay flat as threads are added (no shared lock, no shared
/// cache line outside the journal head).
fn bench_contended_set(c: &mut Criterion) {
    for threads in [1usize, 4, 8] {
        let knobs = Arc::new(KnobRegistry::new());
        let ids: Vec<_> = (0..threads)
            .map(|i| {
                knobs.register(AtomicKnob::new(
                    KnobSpec::new(format!("k{i}"), 0, 1 << 30),
                    0,
                ))
            })
            .collect();
        c.bench_function(format!("knob_set_contended_{threads}_threads"), |b| {
            b.iter_custom(|iters| {
                let start = std::time::Instant::now();
                std::thread::scope(|s| {
                    for &id in &ids {
                        let knobs = knobs.clone();
                        s.spawn(move || {
                            for v in 0..iters {
                                knobs.set_id(id, v as i64);
                            }
                        });
                    }
                });
                start.elapsed()
            })
        });
    }
}

fn bench_snapshot_capture(c: &mut Criterion) {
    let names = TaskNames::new();
    let profiles = Arc::new(ProfileListener::new(names.clone()));
    let concurrency = Arc::new(ConcurrencyListener::new(256));
    // Populate 16 task profiles so capture does real merge work.
    for i in 0..16 {
        let task = names.intern(&format!("task{i}"));
        for t in 0..8u64 {
            profiles.on_event(&Event::TaskBegin {
                task,
                worker: 0,
                t_ns: t * 100,
            });
            profiles.on_event(&Event::TaskEnd {
                task,
                worker: 0,
                t_ns: t * 100 + 50,
                elapsed_ns: 50,
            });
        }
    }
    let intro = Introspection::new(profiles, concurrency);
    for i in 0..8 {
        intro.register_gauge(&format!("gauge{i}"), move || i as f64);
    }
    let mut t = 0u64;
    c.bench_function("snapshot_capture_16_profiles_8_gauges", |b| {
        b.iter(|| {
            t += 1;
            std::hint::black_box(intro.capture(t));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30);
    targets = bench_knob_access, bench_contended_set, bench_snapshot_capture
}
criterion_main!(benches);
