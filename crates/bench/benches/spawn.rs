//! Spawn-path microbenches: the per-task α cost the zero-allocation fast
//! path attacks. Three shapes:
//!
//! * `single_thread` — one worker, spawn+execute round trips; the purest
//!   view of per-task overhead (inline body, no steal, no condvar on the
//!   steady path). The `boxed_baseline` variant forces the body over the
//!   inline budget so the old boxed cost stays measurable for comparison.
//! * `fan_out` — one producer bursts N tasks at an idle pool, measuring
//!   submission + wake + drain (batch wake waves vs. per-task notifies).
//! * `ping_pong` — fork-join recursion depth via nested scopes; stresses
//!   the LIFO slot and helping join.
//!
//! Before/after numbers live in EXPERIMENTS.md (Fig 4 section).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lg_core::LookingGlass;
use lg_runtime::{PoolConfig, ThreadPool};

fn pool(workers: usize) -> ThreadPool {
    ThreadPool::new(
        LookingGlass::builder().build(),
        PoolConfig {
            workers,
            ..PoolConfig::default()
        },
    )
}

fn bench_single_thread(c: &mut Criterion) {
    let p = pool(1);
    let mut group = c.benchmark_group("spawn_single_thread");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("inline_1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                p.spawn_named("st_inline", || {});
            }
            p.wait_idle();
        })
    });
    group.bench_function("boxed_baseline_1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                // 64 bytes of captures: past both the inline budget and
                // the slab tier — the representation every task paid for
                // before the inline rework.
                let big = [0u64; 9];
                p.spawn_named("st_boxed", move || {
                    std::hint::black_box(big);
                });
            }
            p.wait_idle();
        })
    });
    group.finish();
}

fn bench_fan_out(c: &mut Criterion) {
    let p = pool(4);
    let mut group = c.benchmark_group("spawn_fan_out");
    for n in [100usize, 1000, 10_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("spawn_named", n), &n, |b, &n| {
            b.iter(|| {
                for _ in 0..n {
                    p.spawn_named("fan", || std::hint::black_box(()));
                }
                p.wait_idle();
            })
        });
        group.bench_with_input(BenchmarkId::new("spawn_batch", n), &n, |b, &n| {
            b.iter(|| {
                p.spawn_batch("fan_batch", 0..n, 1, |_, _| std::hint::black_box(()));
                p.wait_idle();
            })
        });
    }
    group.finish();
}

fn bench_ping_pong(c: &mut Criterion) {
    let p = pool(2);
    let mut group = c.benchmark_group("spawn_ping_pong");
    // Each round trips through a scope: spawn one task, barrier, repeat —
    // the latency-bound shape (fork-join of width 1, depth N).
    group.throughput(Throughput::Elements(100));
    group.bench_function("scope_depth_100", |b| {
        b.iter(|| {
            for _ in 0..100 {
                p.scope(|s| {
                    s.spawn_named("pong", || std::hint::black_box(()));
                });
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_single_thread, bench_fan_out, bench_ping_pong);
criterion_main!(benches);
