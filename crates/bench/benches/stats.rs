//! Criterion benches for the statistics primitives every event touches.

use criterion::{criterion_group, criterion_main, Criterion};
use lg_metrics::{CounterRegistry, Ewma, Histogram, SlidingWindow, TimeSeries, Welford};

fn bench_welford(c: &mut Criterion) {
    c.bench_function("welford_update", |b| {
        let mut w = Welford::new();
        let mut x = 0.0f64;
        b.iter(|| {
            x += 1.0;
            w.update(std::hint::black_box(x));
        });
        std::hint::black_box(w.mean());
    });
    c.bench_function("welford_merge", |b| {
        let mut a = Welford::new();
        let mut other = Welford::new();
        for i in 0..1000 {
            other.update(i as f64);
        }
        b.iter(|| a.merge(std::hint::black_box(&other)));
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram_record", |b| {
        let mut h = Histogram::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(std::hint::black_box(v >> 32));
        });
        std::hint::black_box(h.count());
    });
    c.bench_function("histogram_p99", |b| {
        let mut h = Histogram::new();
        for i in 0..100_000u64 {
            h.record(i * 37 % 1_000_000);
        }
        b.iter(|| std::hint::black_box(h.p99()));
    });
}

fn bench_small_structs(c: &mut Criterion) {
    c.bench_function("ewma_update", |b| {
        let mut e = Ewma::new(0.1);
        let mut x = 0.0;
        b.iter(|| {
            x += 0.5;
            e.update(std::hint::black_box(x));
        });
        std::hint::black_box(e.value());
    });
    c.bench_function("sliding_window_push", |b| {
        let mut w = SlidingWindow::new(256);
        let mut x = 0.0;
        b.iter(|| {
            x += 1.0;
            w.push(std::hint::black_box(x));
        });
        std::hint::black_box(w.mean());
    });
    c.bench_function("timeseries_push", |b| {
        let mut ts = TimeSeries::new(1024);
        let mut t = 0u64;
        b.iter(|| {
            t += 1000;
            ts.push(std::hint::black_box(t), 1.0);
        });
        std::hint::black_box(ts.len());
    });
}

fn bench_counters(c: &mut Criterion) {
    let reg = CounterRegistry::new();
    let counter = reg.counter("bench");
    c.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    c.bench_function("counter_lookup_and_inc", |b| {
        b.iter(|| reg.counter(std::hint::black_box("bench")).inc())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30);
    targets = bench_welford, bench_histogram, bench_small_structs, bench_counters
}
criterion_main!(benches);
