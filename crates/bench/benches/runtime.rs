//! Criterion benches for the work-stealing runtime (spawn/execute cost,
//! parallel_for chunking — backs Fig 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lg_core::LookingGlass;
use lg_runtime::{PoolConfig, ThreadPool};

fn pool() -> ThreadPool {
    ThreadPool::new(LookingGlass::builder().build(), PoolConfig::default())
}

fn bench_spawn_execute(c: &mut Criterion) {
    let p = pool();
    let mut group = c.benchmark_group("spawn_execute");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("fire_and_forget_1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                p.spawn_named("bench_task", || {});
            }
            p.wait_idle();
        })
    });
    group.bench_function("scoped_1000", |b| {
        b.iter(|| {
            p.scope(|s| {
                for _ in 0..1000 {
                    s.spawn_named("bench_scoped", || {});
                }
            });
        })
    });
    group.finish();
}

fn bench_parallel_for_chunks(c: &mut Criterion) {
    let p = pool();
    let n = 100_000usize;
    let data: Vec<u64> = (0..n as u64).collect();
    let mut group = c.benchmark_group("parallel_for_chunk");
    group.throughput(Throughput::Elements(n as u64));
    for chunk in [64usize, 1024, 16384] {
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, &chunk| {
            b.iter(|| {
                let data = &data;
                p.parallel_for("bench_pf", 0..n, chunk, move |i| {
                    std::hint::black_box(data[i].wrapping_mul(31));
                });
            })
        });
    }
    group.finish();
}

fn bench_join_handle(c: &mut Criterion) {
    let p = pool();
    c.bench_function("spawn_join_roundtrip", |b| {
        b.iter(|| p.spawn("bench_join", || 42u64).join().unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30);
    targets = bench_spawn_execute, bench_parallel_for_chunks, bench_join_handle
}
criterion_main!(benches);
