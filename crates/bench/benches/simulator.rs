//! Criterion benches for the discrete-event simulator itself: how much
//! simulated work can be pushed per host-second (bounds experiment sizes).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lg_sim::{MachineSpec, SimRuntime, SimTask, SimWorkload};

fn bench_sim_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    for tasks in [16usize, 256] {
        group.throughput(Throughput::Elements(tasks as u64));
        group.bench_function(format!("run_batch_{tasks}_tasks"), |b| {
            let mut sim = SimRuntime::new(MachineSpec::server32());
            b.iter(|| {
                sim.submit_all((0..tasks).map(|_| SimTask::new("b", 1e6, 5e5)));
                std::hint::black_box(sim.run_until_idle());
            })
        });
    }
    group.bench_function("stencil_timestep_64_tasks", |b| {
        let mut sim = SimRuntime::new(MachineSpec::server32());
        let w = SimWorkload::stencil(1e8, 64);
        b.iter(|| {
            sim.submit_all(w.step_batch());
            std::hint::black_box(sim.run_until_idle());
        })
    });
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    use lg_sim::EventQueue;
    c.bench_function("event_queue_schedule_pop", |b| {
        let mut q = EventQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 3;
            q.schedule(t % 1000, t);
            std::hint::black_box(q.pop());
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30);
    targets = bench_sim_step, bench_event_queue
}
criterion_main!(benches);
