//! Criterion benches for the multi-tenant arbiter's control round.
//!
//! The claim under test (fig10 acceptance): one control round over an
//! idle fleet — step each tenant's (empty) policy engine, capture its
//! snapshot, scan its journal, arbitrate, and skip the no-op writes —
//! stays in the microsecond range at 64 tenants. Rebalancing that
//! changes nothing must not write anything: after the first round every
//! subsequent round's `knob_writes` is 0, so the bench measures the
//! steady-state observation cost, not actuation churn.
//!
//! Fleets of 1 / 16 / 64 tenants, each a full [`LookingGlass`] with its
//! own `thread_cap` knob, admitted under equal weights. The
//! `demand_aware_*` variants admit every tenant with a native demand
//! probe (saturating profile over a declared width), so each round also
//! evaluates 64 probes and runs the marginal-utility transfer pass —
//! the fig10 target is ≤ 35 µs for the idle 64-tenant demand-aware
//! round.

use criterion::{criterion_group, criterion_main, Criterion};
use lg_core::knob::{AtomicKnob, KnobSpec};
use lg_core::{
    Arbiter, ArbiterConfig, Clock, DemandClass, DemandProfile, LookingGlass, SloClass, TenantSpec,
    VirtualClock,
};
use std::sync::Arc;

const PERIOD_NS: u64 = 10_000_000;

struct Fleet {
    clock: Arc<VirtualClock>,
    arb: Arc<Arbiter>,
    // Tenants stay alive for the arbiter's duration.
    _tenants: Vec<Arc<LookingGlass>>,
}

fn fleet(n: usize, demand_aware: bool) -> Fleet {
    let clock = Arc::new(VirtualClock::new());
    let gov = LookingGlass::builder().clock(clock.clone()).build();
    // Budget scales with the fleet so every tenant's floor fits.
    let arb = Arbiter::with_instance(ArbiterConfig::new(4 * n as i64), gov);
    let mut tenants = Vec::with_capacity(n);
    for i in 0..n {
        let lg = LookingGlass::builder().clock(clock.clone()).build();
        lg.knobs().register(AtomicKnob::new(
            KnobSpec::new("thread_cap", 1, 8).with_unit("workers"),
            8,
        ));
        let mut spec = TenantSpec::new(format!("t{i}"), SloClass::Batch, 8).with_min_threads(1);
        if demand_aware {
            // A stable declared width: the probe runs every round, but a
            // settled fleet still must not actuate.
            let width = 2.0 + (i % 4) as f64;
            spec = spec.with_demand_probe(move |_snap, alloc| {
                DemandProfile::saturating(DemandClass::Batch, 0.0, width, alloc)
            });
        }
        arb.admit(lg.clone(), spec, "thread_cap");
        tenants.push(lg);
    }
    // Settle: the first round performs the initial writes; every round
    // after is steady-state.
    clock.advance_by(PERIOD_NS);
    arb.control_round(clock.now_ns());
    Fleet {
        clock,
        arb,
        _tenants: tenants,
    }
}

fn bench_control_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("arbiter_round");
    for n in [1usize, 16, 64] {
        let f = fleet(n, false);
        g.bench_function(format!("idle_{n}_tenants"), |b| {
            b.iter(|| {
                f.clock.advance_by(PERIOD_NS);
                let r = f.arb.control_round(f.clock.now_ns());
                assert_eq!(r.knob_writes, 0, "idle round must not actuate");
                r.total_allocated
            })
        });
    }
    for n in [16usize, 64] {
        let f = fleet(n, true);
        g.bench_function(format!("demand_aware_{n}_tenants"), |b| {
            b.iter(|| {
                f.clock.advance_by(PERIOD_NS);
                let r = f.arb.control_round(f.clock.now_ns());
                assert_eq!(r.knob_writes, 0, "settled demand round must not actuate");
                r.total_allocated
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_control_round);
criterion_main!(benches);
