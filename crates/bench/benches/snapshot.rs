//! Criterion benches for incremental introspection capture.
//!
//! Models a multi-tenant deployment: each "tenant" owns a counter
//! registry (4 counters), a handful of task profiles, and a stamped
//! gauge, all registered on one shared [`Introspection`]. The claims
//! under test, at 1 / 16 / 64 tenants:
//!
//! * **idle** — nothing written since the last round: capture should be
//!   near-free (generation checks + Arc bumps, zero merges) and far
//!   cheaper than the from-scratch recompute, widening with tenant
//!   count (target: ≥ 10× at 64 tenants);
//! * **light** — one tenant active: cost proportional to that tenant's
//!   dirty shards, not the fleet;
//! * **hot** — every tenant writes every round: the delta path's
//!   bookkeeping must not make it slower than a full recompute
//!   (target: no worse than `capture_uncached` at 1 tenant);
//! * **uncached** — the from-scratch oracle, the pre-PR cost model.

use criterion::{criterion_group, criterion_main, Criterion};
use lg_core::concurrency::ConcurrencyListener;
use lg_core::event::{Event, TaskNames};
use lg_core::listener::Listener as _;
use lg_core::profile::ProfileListener;
use lg_core::snapshot::Introspection;
use lg_metrics::CounterRegistry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const COUNTERS_PER_TENANT: usize = 4;
const TASKS_PER_TENANT: usize = 4;

struct Tenant {
    counters: Arc<CounterRegistry>,
    tasks: Vec<lg_core::TaskId>,
    gauge_stamp: Arc<AtomicU64>,
    gauge_value: Arc<AtomicU64>,
}

struct Fleet {
    profiles: Arc<ProfileListener>,
    intro: Introspection,
    tenants: Vec<Tenant>,
    t_ns: u64,
}

fn fleet(n_tenants: usize) -> Fleet {
    let names = TaskNames::new();
    let profiles = Arc::new(ProfileListener::new(names.clone()));
    let concurrency = Arc::new(ConcurrencyListener::new(256));
    let intro = Introspection::new(profiles.clone(), concurrency);
    let mut tenants = Vec::with_capacity(n_tenants);
    let mut t_ns = 0u64;
    for tn in 0..n_tenants {
        let counters = Arc::new(CounterRegistry::new());
        for c in 0..COUNTERS_PER_TENANT {
            counters.counter(&format!("tenant{tn}.c{c}")).add(1);
        }
        intro.register_counters(counters.clone());
        let tasks: Vec<_> = (0..TASKS_PER_TENANT)
            .map(|i| names.intern(&format!("tenant{tn}.task{i}")))
            .collect();
        // Seed each profile so captures merge real Welford state.
        for &task in &tasks {
            for _ in 0..8 {
                t_ns += 100;
                profiles.on_event(&Event::TaskBegin {
                    task,
                    worker: 0,
                    t_ns,
                });
                profiles.on_event(&Event::TaskEnd {
                    task,
                    worker: 0,
                    t_ns: t_ns + 50,
                    elapsed_ns: 50,
                });
            }
        }
        let gauge_stamp = Arc::new(AtomicU64::new(0));
        let gauge_value = Arc::new(AtomicU64::new(0));
        let gv = gauge_value.clone();
        intro.register_gauge_stamped(
            &format!("tenant{tn}.load"),
            gauge_stamp.clone(),
            move || gv.load(Ordering::Relaxed) as f64,
        );
        tenants.push(Tenant {
            counters,
            tasks,
            gauge_stamp,
            gauge_value,
        });
    }
    Fleet {
        profiles,
        intro,
        tenants,
        t_ns,
    }
}

impl Fleet {
    /// One tenant's per-round activity: a counter add, one task
    /// completion, and a gauge move.
    fn touch(&mut self, tenant: usize) {
        self.t_ns += 100;
        let t = &self.tenants[tenant];
        t.counters.counter("tenant-hot").add(1);
        self.profiles.on_event(&Event::TaskEnd {
            task: t.tasks[0],
            worker: 0,
            t_ns: self.t_ns,
            elapsed_ns: 42,
        });
        t.gauge_value.fetch_add(1, Ordering::Relaxed);
        t.gauge_stamp.fetch_add(1, Ordering::Release);
    }
}

fn bench_capture(c: &mut Criterion) {
    for tenants in [1usize, 16, 64] {
        // Idle: captures with zero writes in between — the steady state
        // of a mostly-quiet fleet.
        let mut f = fleet(tenants);
        f.t_ns += 1;
        f.intro.capture(f.t_ns); // warm the merged base
        c.bench_function(format!("capture_idle_{tenants}_tenants"), |b| {
            b.iter(|| {
                f.t_ns += 1;
                std::hint::black_box(f.intro.capture(f.t_ns));
            })
        });

        // Light: exactly one tenant active per round.
        let mut f = fleet(tenants);
        f.t_ns += 1;
        f.intro.capture(f.t_ns);
        c.bench_function(format!("capture_light_{tenants}_tenants"), |b| {
            b.iter(|| {
                f.touch(0);
                f.t_ns += 1;
                std::hint::black_box(f.intro.capture(f.t_ns));
            })
        });

        // Hot: every tenant writes every round — worst case for the
        // delta path's bookkeeping.
        let mut f = fleet(tenants);
        f.t_ns += 1;
        f.intro.capture(f.t_ns);
        c.bench_function(format!("capture_hot_{tenants}_tenants"), |b| {
            b.iter(|| {
                for tn in 0..tenants {
                    f.touch(tn);
                }
                f.t_ns += 1;
                std::hint::black_box(f.intro.capture(f.t_ns));
            })
        });

        // From-scratch oracle: what every capture cost before the
        // generation-stamp cache existed.
        let mut f = fleet(tenants);
        c.bench_function(format!("capture_uncached_{tenants}_tenants"), |b| {
            b.iter(|| {
                f.t_ns += 1;
                std::hint::black_box(f.intro.capture_uncached(f.t_ns));
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(30);
    targets = bench_capture
}
criterion_main!(benches);
