//! Criterion benches for search-step and policy-engine cost (the control
//! plane must be cheap relative to measurement epochs).

use criterion::{criterion_group, criterion_main, Criterion};
use lg_core::knob::{AtomicKnob, KnobSpec};
use lg_core::policy::{FnPolicy, PolicyDecision};
use lg_core::{KnobRegistry, PolicyEngine};
use lg_tuning::{Dim, HillClimb, RandomSearch, Search, Space};
use std::sync::Arc;

fn bench_search_step(c: &mut Criterion) {
    let space = || {
        Space::new(vec![
            Dim::range("a", 0, 1000, 1),
            Dim::range("b", 0, 1000, 1),
        ])
    };
    c.bench_function("hillclimb_propose_report", |b| {
        let mut hc = HillClimb::new(space());
        b.iter(|| {
            match hc.propose() {
                Some(p) => {
                    let y = ((p[0] - 500).pow(2) + (p[1] - 500).pow(2)) as f64;
                    hc.report(&p, y);
                }
                None => hc = HillClimb::new(space()),
            };
        });
    });
    c.bench_function("random_propose_report", |b| {
        let mut rs = RandomSearch::new(space(), usize::MAX / 2, 1);
        b.iter(|| {
            let p = rs.propose().unwrap();
            rs.report(&p, p[0] as f64);
        });
    });
}

fn bench_policy_engine(c: &mut Criterion) {
    let knobs = Arc::new(KnobRegistry::new());
    knobs.register(AtomicKnob::new(KnobSpec::new("k", 0, 1000), 0));
    let engine = PolicyEngine::new(knobs);
    for i in 0..8 {
        engine.register_periodic(
            FnPolicy::new(format!("p{i}"), |_, _, _| PolicyDecision::noop()),
            1,
            0,
        );
    }
    let mut t = 0u64;
    c.bench_function("policy_engine_step_8_policies", |b| {
        b.iter(|| {
            t += 10;
            std::hint::black_box(engine.step(t));
        })
    });
}

fn bench_knob_set(c: &mut Criterion) {
    let knobs = KnobRegistry::new();
    knobs.register(AtomicKnob::new(KnobSpec::new("k", 0, 1000), 0));
    let mut v = 0i64;
    c.bench_function("knob_registry_set", |b| {
        b.iter(|| {
            v = (v + 1) % 1000;
            knobs.set("k", std::hint::black_box(v));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30);
    targets = bench_search_step, bench_policy_engine, bench_knob_set
}
criterion_main!(benches);
