//! Criterion benches for the parcel layer (backs Table 2).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lg_net::parcel::Parcel;
use lg_net::{Coalescer, SimLink, TransportCost};

fn bench_coalescer(c: &mut Criterion) {
    let mut group = c.benchmark_group("coalescer");
    group.throughput(Throughput::Elements(1));
    group.bench_function("offer_no_flush", |b| {
        let mut coal = Coalescer::new(1_000_000, 1_000_000, u64::MAX / 2);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            // Rotate destinations so buffers stay small-ish.
            let dest = (seq % 64) as u32;
            std::hint::black_box(coal.offer(Parcel::new(0, dest, 0, seq, Vec::new()), seq));
            if seq.is_multiple_of(1_000_000) {
                coal.flush_all(seq);
            }
        });
    });
    group.bench_function("offer_window8", |b| {
        let mut coal = Coalescer::new(8, 64, u64::MAX / 2);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            std::hint::black_box(coal.offer(Parcel::new(0, 1, 0, seq, Vec::new()), seq));
        });
    });
    group.finish();
}

fn bench_link(c: &mut Criterion) {
    use lg_net::coalesce::{FlushReason, WireMessage};
    let mut group = c.benchmark_group("sim_link");
    for nparcels in [1usize, 64] {
        group.throughput(Throughput::Elements(nparcels as u64));
        group.bench_function(format!("transmit_{nparcels}_parcels"), |b| {
            let mut link = SimLink::new(TransportCost::cluster());
            let mut t = 0u64;
            b.iter(|| {
                t += 10_000;
                let msg = WireMessage {
                    dest: 1,
                    parcels: (0..nparcels as u64)
                        .map(|s| Parcel::new(0, 1, 0, s, vec![0u8; 64]))
                        .collect(),
                    reason: FlushReason::Window,
                    t_ns: t,
                };
                std::hint::black_box(link.transmit(&msg, |_| t));
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30);
    targets = bench_coalescer, bench_link
}
criterion_main!(benches);
