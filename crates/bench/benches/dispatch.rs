//! Criterion benches for the observation hot path (backs Fig 1 / Fig 7).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lg_core::listener::FnListener;
use lg_core::profile::ProfileListener;
use lg_core::{Dispatcher, Event, LookingGlass, TaskNames};
use std::sync::Arc;

fn bench_dispatch(c: &mut Criterion) {
    let names = TaskNames::new();
    let task = names.intern("bench");
    let event = Event::TaskEnd {
        task,
        worker: 0,
        t_ns: 1,
        elapsed_ns: 1,
    };

    let mut group = c.benchmark_group("dispatch");
    {
        let d = Dispatcher::new();
        d.set_enabled(false);
        group.bench_function("disabled", |b| {
            b.iter(|| d.dispatch(std::hint::black_box(&event)))
        });
    }
    {
        let d = Dispatcher::new();
        group.bench_function("no_listeners", |b| {
            b.iter(|| d.dispatch(std::hint::black_box(&event)))
        });
    }
    {
        let d = Dispatcher::new();
        d.register(Arc::new(FnListener::new("noop", |e| {
            std::hint::black_box(e);
        })));
        group.bench_function("one_noop_listener", |b| {
            b.iter(|| d.dispatch(std::hint::black_box(&event)))
        });
    }
    {
        let d = Dispatcher::new();
        d.register(Arc::new(ProfileListener::new(names.clone())));
        group.bench_function("profiler_listener", |b| {
            b.iter(|| d.dispatch(std::hint::black_box(&event)))
        });
    }
    group.finish();
}

/// Contended dispatch: N emitter threads hammer one dispatcher with the
/// profiler registered (the Fig 7 scenario). Each iteration runs a full
/// multi-thread burst via the Fig 7 harness helper, so thread spawn cost
/// is amortized over thousands of events; the reported time is per burst
/// — divide by `threads × 5000` for per-event cost.
fn bench_dispatch_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_contended");
    for threads in [2usize, 4, 8] {
        group.bench_function(format!("profiler_{threads}_threads"), |b| {
            b.iter(|| {
                std::hint::black_box(lg_bench::experiments::fig7_dispatch::throughput(
                    threads, 5_000, true,
                ))
            })
        });
    }
    group.finish();
}

fn bench_timer(c: &mut Criterion) {
    let lg = LookingGlass::builder().build();
    c.bench_function("timer_full_instance", |b| {
        b.iter(|| {
            let t = lg.timer("bench_timer");
            std::hint::black_box(&t);
        })
    });
}

fn bench_interning(c: &mut Criterion) {
    let names = TaskNames::new();
    names.intern("hot_name");
    c.bench_function("intern_existing_name", |b| {
        b.iter(|| names.intern(std::hint::black_box("hot_name")))
    });
    let mut i = 0u64;
    c.bench_function("intern_new_name", |b| {
        b.iter_batched(
            || {
                i += 1;
                format!("name_{i}")
            },
            |n| names.intern(&n),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30);
    targets = bench_dispatch, bench_dispatch_contended, bench_timer, bench_interning
}
criterion_main!(benches);
