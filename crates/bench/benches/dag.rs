//! Criterion benches for the DAG scheduling path (backs Fig 11).
//!
//! * `dep_decrement` — the per-edge release cost: a long chain is pure
//!   decrement → promote → run, so chain/node gives the marginal cost of
//!   one dependency resolution (the path the zero-alloc gate freezes).
//! * `ready_promotion` — a star fan-out (1 root → N leaves): one
//!   completion releases N nodes at once, stressing the succ-list walk
//!   and enqueue burst.
//! * `makespan_tree` / `makespan_sweep` — end-to-end DAG execution of
//!   the two depth-dominated patterns at 1/4/8 workers, with real
//!   busywork bodies: the macro view of the same machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lg_core::LookingGlass;
use lg_runtime::{PoolConfig, ThreadPool};
use lg_workloads::dag::{generate, run_on_pool, CostModel, DagConfig, DagPattern};

fn pool(workers: usize) -> ThreadPool {
    ThreadPool::new(
        LookingGlass::builder().build(),
        PoolConfig::with_workers(workers),
    )
}

fn bench_dep_decrement(c: &mut Criterion) {
    let p = pool(1);
    let chain = 1024u64;
    let mut group = c.benchmark_group("dag_dep_decrement");
    group.throughput(Throughput::Elements(chain));
    group.bench_function(format!("chain_{chain}"), |b| {
        b.iter(|| {
            p.dag_scope(|g| {
                let mut prev = g.spawn_after("dag_chain", &[], || {});
                for _ in 0..chain {
                    prev = g.spawn_after("dag_chain", &[prev], || {});
                }
            });
        })
    });
    group.finish();
}

fn bench_ready_promotion(c: &mut Criterion) {
    let p = pool(4);
    let fan = 512u64;
    let mut group = c.benchmark_group("dag_ready_promotion");
    group.throughput(Throughput::Elements(fan));
    group.bench_function(format!("fan_{fan}"), |b| {
        b.iter(|| {
            p.dag_scope(|g| {
                let root = g.spawn_after("dag_root", &[], || {});
                for _ in 0..fan {
                    g.spawn_after("dag_leaf", &[root], || {});
                }
            });
        })
    });
    group.finish();
}

fn bench_makespan(c: &mut Criterion) {
    for (label, pattern, width, depth) in [
        ("makespan_tree", DagPattern::Tree, 64, 0),
        ("makespan_sweep", DagPattern::Sweep, 8, 48),
    ] {
        let spec = generate(
            &DagConfig {
                pattern,
                width,
                depth,
                grain_ops: 2e4,
                grain_spread: 3.0,
                comm_bytes: 0.0,
                seed: 11,
            },
            &CostModel::default(),
        );
        let mut group = c.benchmark_group(format!("dag_{label}"));
        group.throughput(Throughput::Elements(spec.nodes() as u64));
        for workers in [1usize, 4, 8] {
            let p = pool(workers);
            let spec = spec.clone();
            group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
                b.iter(|| run_on_pool(&p, &spec, 1e-2))
            });
        }
        group.finish();
    }
}

criterion_group!(
    benches,
    bench_dep_decrement,
    bench_ready_promotion,
    bench_makespan
);
criterion_main!(benches);
