//! Task Bench-style DAG workload matrix.
//!
//! A seeded, parameterized generator for the dependency patterns the
//! Task Bench suite uses to compare runtime systems: trivial
//! (embarrassingly parallel), 1-D/2-D stencils, reduction trees, FFT
//! butterflies, wavefront sweeps, and seeded random DAGs — with tunable
//! width, depth, task grain (ops), and per-edge communication weight
//! (bytes). Every generated DAG is **acyclic by construction**: nodes are
//! numbered level by level and edges only point from level `l-1` to level
//! `l`, so every predecessor id is strictly smaller than its consumer's —
//! exactly the wiring order [`lg_runtime::DagScope::spawn_after`]
//! requires.
//!
//! The same [`DagSpec`] runs on both substrates:
//!
//! * [`run_on_sim`] — an *external* scheduler over
//!   [`lg_sim::SimRuntime::step_boundary`]: ready nodes are withheld
//!   until their dependencies resolve, and the submission order is the
//!   scheduling policy under test ([`DagSched`]). Virtual time makes
//!   makespan comparisons exact and reproducible.
//! * [`run_on_pool`] — real execution through
//!   [`lg_runtime::ThreadPool::dag_scope`], with per-node critical-path
//!   hints driving the runtime's two-level priority, a checksum over the
//!   computed values, and an execution trace (begin/end sequence stamps,
//!   run counts) the property tests check dependency order against.
//!
//! The generator also computes the schedule-independent lower bound every
//! critical-path experiment is judged against: per-node cost under a
//! [`CostModel`], longest path to an exit ([`DagSpec::height_ns`]), and
//! the critical-path marking (`depth + height ≥ (1-ε)·cp`) the runtime's
//! priority lane consumes.

use lg_core::Clock;
use lg_runtime::{DagHint, DagNodeId, ThreadPool};
use lg_sim::{SimRuntime, SimTask};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// Dependency pattern of a generated DAG (the Task Bench matrix rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DagPattern {
    /// No dependencies at all — `width × depth` independent tasks
    /// (embarrassingly parallel; any scheduler should tie on this).
    Trivial,
    /// 1-D stencil: node `(l, i)` depends on `(l-1, i-1..=i+1)`, clamped.
    Stencil1d,
    /// 2-D stencil flattened to a row: neighbours at `i`, `i±1`, and
    /// `i±stride` with `stride = ⌈√width⌉`.
    Stencil2d,
    /// Binary reduction tree: `width` leaves, each level halves (the
    /// depth parameter is derived: `⌈log₂ width⌉ + 1` levels).
    Tree,
    /// FFT butterfly: node `(l, i)` depends on `(l-1, i)` and
    /// `(l-1, i ^ 2^((l-1) mod log₂ w))`.
    Butterfly,
    /// Triangular-solve sweep (right-looking forward substitution).
    /// Level `l` is elimination step `l`; its index-0 node is the
    /// *diagonal* (finalises unknown `l`), the rest are trailing
    /// updates, and the active window contracts by one cell per step:
    /// level `l` has `min(width, depth - l)` nodes. Node `(l, i)`
    /// depends on the previous diagonal `(l-1, 0)` — every update needs
    /// the newly finalised unknown — and on its own cell's previous
    /// update `(l-1, i+1)` (cells shift down as the window slides).
    /// The diagonal chain gates everything downstream, so frontier
    /// nodes differ sharply in remaining height: a FIFO scheduler
    /// buries each new diagonal behind the backlog of old updates,
    /// while a critical-path scheduler runs it immediately — the shape
    /// height-aware scheduling exists for.
    Sweep,
    /// Seeded random: each node depends on 1–3 uniformly drawn nodes of
    /// the previous level.
    Random,
}

impl DagPattern {
    /// All patterns, in matrix order.
    pub const ALL: [DagPattern; 7] = [
        DagPattern::Trivial,
        DagPattern::Stencil1d,
        DagPattern::Stencil2d,
        DagPattern::Tree,
        DagPattern::Butterfly,
        DagPattern::Sweep,
        DagPattern::Random,
    ];

    /// Short stable name (table/CSV key).
    pub fn name(&self) -> &'static str {
        match self {
            DagPattern::Trivial => "trivial",
            DagPattern::Stencil1d => "stencil1d",
            DagPattern::Stencil2d => "stencil2d",
            DagPattern::Tree => "tree",
            DagPattern::Butterfly => "butterfly",
            DagPattern::Sweep => "sweep",
            DagPattern::Random => "random",
        }
    }
}

/// Parameters of a generated DAG.
#[derive(Clone, Copy, Debug)]
pub struct DagConfig {
    /// Dependency pattern.
    pub pattern: DagPattern,
    /// Maximum nodes per level (exact for most patterns; [`DagPattern::Tree`]
    /// uses it as the leaf count, [`DagPattern::Sweep`] ramps up to it).
    pub width: usize,
    /// Number of levels ([`DagPattern::Tree`] derives its own).
    pub depth: usize,
    /// Mean task grain in operations.
    pub grain_ops: f64,
    /// Per-node grain spread: ops are `grain_ops × (1 + spread × u³)`
    /// with `u` uniform in `[0, 1)`, seeded. The cubed draw makes the
    /// imbalance heavy-tailed — most tasks sit near `grain_ops`, a few
    /// run up to `(1 + spread)×` longer — which is the load shape that
    /// separates height-aware schedulers from greedy ones (a uniform
    /// spread mostly averages out across a wide frontier).
    pub grain_spread: f64,
    /// Communication weight per dependency edge, in bytes: a node's
    /// memory traffic is `indegree × comm_bytes`.
    pub comm_bytes: f64,
    /// Generator seed (grain draws and random-pattern edges).
    pub seed: u64,
}

impl Default for DagConfig {
    fn default() -> Self {
        Self {
            pattern: DagPattern::Stencil1d,
            width: 16,
            depth: 16,
            grain_ops: 1e6,
            grain_spread: 0.0,
            comm_bytes: 0.0,
            seed: 1,
        }
    }
}

/// Cost model translating a node's `(ops, bytes)` into nanoseconds, used
/// for heights, critical-path marking, and the makespan lower bound. The
/// additive form (compute time + transfer time) is the standard
/// list-scheduling abstraction; the fluid simulator will disagree under
/// bandwidth contention, which is part of what the experiments measure.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Core compute rate (ops/s).
    pub ops_per_s: f64,
    /// Memory bandwidth per task (bytes/s).
    pub bytes_per_s: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            ops_per_s: 1e9,
            bytes_per_s: 1e10,
        }
    }
}

impl CostModel {
    /// Modelled execution time of a node, ns.
    pub fn cost_ns(&self, ops: f64, bytes: f64) -> u64 {
        (ops / self.ops_per_s * 1e9 + bytes / self.bytes_per_s * 1e9).ceil() as u64
    }
}

/// A generated DAG: CSR adjacency in both directions plus the per-node
/// schedule metadata (level, cost, height, critical flag).
#[derive(Clone, Debug)]
pub struct DagSpec {
    /// The generating parameters.
    pub config: DagConfig,
    /// Level (distance from the entry layer) of each node.
    pub level: Vec<u32>,
    /// CSR offsets into [`DagSpec::preds`] (`len = nodes + 1`).
    pub pred_off: Vec<u32>,
    /// Concatenated predecessor lists.
    pub preds: Vec<u32>,
    /// CSR offsets into [`DagSpec::succs`] (`len = nodes + 1`).
    pub succ_off: Vec<u32>,
    /// Concatenated successor lists.
    pub succs: Vec<u32>,
    /// Operations per node.
    pub ops: Vec<f64>,
    /// Bytes per node (`indegree × comm_bytes`).
    pub bytes: Vec<f64>,
    /// Modelled cost per node, ns.
    pub cost_ns: Vec<u64>,
    /// Longest cost-weighted path from each node to an exit (inclusive).
    pub height_ns: Vec<u64>,
    /// Nodes on (or within ε of) the critical path.
    pub critical: Vec<bool>,
    /// Critical-path length under the additive [`CostModel`], ns.
    pub cp_ns: u64,
    /// Total modelled work under the additive [`CostModel`], ns.
    pub work_ns: u64,
    /// Compute-only critical-path length, ns (floored). Unlike the
    /// additive `cp_ns`, this is a true lower bound on *any* executor —
    /// including the fluid simulator, whose roofline model overlaps
    /// transfer with compute instead of adding it.
    pub cp_compute_ns: u64,
    /// Compute-only total work, ns (floored); see [`DagSpec::cp_compute_ns`].
    pub work_compute_ns: u64,
}

/// Per-level node counts for a pattern (the generator's only
/// pattern-specific shape decision besides edges).
fn level_sizes(cfg: &DagConfig) -> Vec<usize> {
    let w = cfg.width.max(1);
    let d = cfg.depth.max(1);
    match cfg.pattern {
        DagPattern::Tree => {
            let mut sizes = vec![w];
            let mut cur = w;
            while cur > 1 {
                cur = cur.div_ceil(2);
                sizes.push(cur);
            }
            sizes
        }
        DagPattern::Sweep => (0..d).map(|l| (d - l).min(w).max(1)).collect(),
        _ => vec![w; d],
    }
}

/// Predecessors (as previous-level indices) of node `i` in level `l > 0`.
fn preds_of(cfg: &DagConfig, l: usize, i: usize, prev_len: usize, rng: &mut StdRng) -> Vec<usize> {
    let clamp =
        |j: i64| -> Option<usize> { (j >= 0 && (j as usize) < prev_len).then_some(j as usize) };
    let mut ps: Vec<usize> = match cfg.pattern {
        DagPattern::Trivial => Vec::new(),
        DagPattern::Stencil1d => (-1..=1).filter_map(|d| clamp(i as i64 + d)).collect(),
        DagPattern::Stencil2d => {
            let stride = (cfg.width.max(1) as f64).sqrt().ceil() as i64;
            [0, -1, 1, -stride, stride]
                .iter()
                .filter_map(|&d| clamp(i as i64 + d))
                .collect()
        }
        DagPattern::Tree => [2 * i, 2 * i + 1]
            .iter()
            .filter_map(|&j| (j < prev_len).then_some(j))
            .collect(),
        DagPattern::Butterfly => {
            let logw = usize::BITS - (prev_len.max(2) - 1).leading_zeros();
            let partner = i ^ (1usize << ((l - 1) as u32 % logw));
            let mut v = vec![i.min(prev_len - 1)];
            if partner < prev_len && partner != v[0] {
                v.push(partner);
            }
            v
        }
        // Previous diagonal gates the step; own-cell chain shifts by one
        // as the active window slides (clamped at the width cap).
        DagPattern::Sweep => vec![0, (i + 1).min(prev_len - 1)],
        DagPattern::Random => {
            let k = rng.gen_range(1..=3usize.min(prev_len));
            let mut v: Vec<usize> = (0..k).map(|_| rng.gen_range(0..prev_len)).collect();
            v.sort_unstable();
            v.dedup();
            v
        }
    };
    ps.sort_unstable();
    ps.dedup();
    ps
}

/// Fraction of `cp_ns` within which a node's `depth + height` counts as
/// critical. A small band (rather than exact equality) keeps the marking
/// robust to grain spread producing near-ties.
const CRITICAL_EPS: f64 = 0.02;

/// Generates the DAG described by `cfg`, with schedule metadata under
/// `model`.
pub fn generate(cfg: &DagConfig, model: &CostModel) -> DagSpec {
    let sizes = level_sizes(cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n: usize = sizes.iter().sum();
    let mut level = Vec::with_capacity(n);
    let mut pred_off = Vec::with_capacity(n + 1);
    let mut preds: Vec<u32> = Vec::new();
    let mut ops = Vec::with_capacity(n);
    pred_off.push(0u32);
    let mut level_base = Vec::with_capacity(sizes.len());
    let mut base = 0usize;
    for &s in &sizes {
        level_base.push(base);
        base += s;
    }
    for (l, &sz) in sizes.iter().enumerate() {
        for i in 0..sz {
            level.push(l as u32);
            if l > 0 {
                let prev_len = sizes[l - 1];
                for p in preds_of(cfg, l, i, prev_len, &mut rng) {
                    preds.push((level_base[l - 1] + p) as u32);
                }
            }
            pred_off.push(preds.len() as u32);
            let u: f64 = rng.gen_range(0.0..1.0);
            ops.push(cfg.grain_ops * (1.0 + cfg.grain_spread * u * u * u));
        }
    }
    // Transpose to successor CSR.
    let mut succ_counts = vec![0u32; n];
    for &p in &preds {
        succ_counts[p as usize] += 1;
    }
    let mut succ_off = Vec::with_capacity(n + 1);
    succ_off.push(0u32);
    for c in &succ_counts {
        succ_off.push(succ_off.last().unwrap() + c);
    }
    let mut succs = vec![0u32; preds.len()];
    let mut cursor: Vec<u32> = succ_off[..n].to_vec();
    for node in 0..n {
        for &pred in &preds[pred_off[node] as usize..pred_off[node + 1] as usize] {
            let p = pred as usize;
            succs[cursor[p] as usize] = node as u32;
            cursor[p] += 1;
        }
    }
    // Costs, heights (reverse topo = reverse node order), earliest
    // starts (forward), critical marking.
    let bytes: Vec<f64> = (0..n)
        .map(|i| (pred_off[i + 1] - pred_off[i]) as f64 * cfg.comm_bytes)
        .collect();
    let cost_ns: Vec<u64> = (0..n).map(|i| model.cost_ns(ops[i], bytes[i])).collect();
    let mut height_ns = vec![0u64; n];
    for node in (0..n).rev() {
        let tail = (succ_off[node] as usize..succ_off[node + 1] as usize)
            .map(|e| height_ns[succs[e] as usize])
            .max()
            .unwrap_or(0);
        height_ns[node] = cost_ns[node] + tail;
    }
    let mut est = vec![0u64; n];
    for node in 0..n {
        est[node] = (pred_off[node] as usize..pred_off[node + 1] as usize)
            .map(|e| {
                let p = preds[e] as usize;
                est[p] + cost_ns[p]
            })
            .max()
            .unwrap_or(0);
    }
    let cp_ns = height_ns.iter().copied().max().unwrap_or(0);
    let band = (cp_ns as f64 * (1.0 - CRITICAL_EPS)) as u64;
    let critical: Vec<bool> = (0..n).map(|i| est[i] + height_ns[i] >= band).collect();
    let work_ns = cost_ns.iter().sum();
    // Compute-only counterparts (no transfer term, no per-node ceil):
    // the fluid simulator can beat the additive model on transfer time
    // (roofline overlap) but never on pure compute, so these floored
    // figures lower-bound every real or simulated schedule.
    let comp_ns: Vec<f64> = ops.iter().map(|&o| o / model.ops_per_s * 1e9).collect();
    let mut comp_height = vec![0f64; n];
    for node in (0..n).rev() {
        let tail = (succ_off[node] as usize..succ_off[node + 1] as usize)
            .map(|e| comp_height[succs[e] as usize])
            .fold(0f64, f64::max);
        comp_height[node] = comp_ns[node] + tail;
    }
    let cp_compute_ns = comp_height.iter().copied().fold(0f64, f64::max).floor() as u64;
    let work_compute_ns = comp_ns.iter().sum::<f64>().floor() as u64;
    DagSpec {
        config: *cfg,
        level,
        pred_off,
        preds,
        succ_off,
        succs,
        ops,
        bytes,
        cost_ns,
        height_ns,
        critical,
        cp_ns,
        work_ns,
        cp_compute_ns,
        work_compute_ns,
    }
}

impl DagSpec {
    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.level.len()
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.level.last().map_or(0, |&l| l as usize + 1)
    }

    /// Number of dependency edges.
    pub fn edges(&self) -> usize {
        self.preds.len()
    }

    /// Predecessors of `node`.
    pub fn preds_of(&self, node: usize) -> &[u32] {
        &self.preds[self.pred_off[node] as usize..self.pred_off[node + 1] as usize]
    }

    /// Successors of `node`.
    pub fn succs_of(&self, node: usize) -> &[u32] {
        &self.succs[self.succ_off[node] as usize..self.succ_off[node + 1] as usize]
    }

    /// The greedy P-worker makespan lower bound:
    /// `max(cp, total_work / workers)`, evaluated on the compute-only
    /// costs so it holds for the fluid simulator too (whose roofline
    /// model overlaps transfer with compute, undercutting the additive
    /// [`CostModel`]).
    pub fn makespan_bound_ns(&self, workers: usize) -> u64 {
        self.cp_compute_ns
            .max((self.work_compute_ns as f64 / workers.max(1) as f64).floor() as u64)
    }

    /// Structural validation — the property-test oracle. Checks that the
    /// DAG is acyclic by construction (every edge points to a strictly
    /// smaller id on the previous level), that level populations respect
    /// the declared width/depth, that CSR transposition is an involution,
    /// and that heights decrease along edges.
    ///
    /// # Panics
    /// Panics with a description on the first violated invariant.
    pub fn validate(&self) {
        let n = self.nodes();
        let w = self.config.width.max(1);
        assert_eq!(self.pred_off.len(), n + 1);
        assert_eq!(self.succ_off.len(), n + 1);
        let expected_levels = match self.config.pattern {
            DagPattern::Tree => {
                let mut cur = w;
                let mut lv = 1;
                while cur > 1 {
                    cur = cur.div_ceil(2);
                    lv += 1;
                }
                lv
            }
            _ => self.config.depth.max(1),
        };
        assert_eq!(self.levels(), expected_levels, "level count");
        let mut pop = vec![0usize; expected_levels];
        for &l in &self.level {
            pop[l as usize] += 1;
        }
        for (l, &p) in pop.iter().enumerate() {
            assert!(p >= 1, "level {l} empty");
            assert!(p <= w, "level {l} wider ({p}) than declared ({w})");
        }
        for node in 0..n {
            for &p in self.preds_of(node) {
                assert!((p as usize) < node, "edge {p} → {node} not forward");
                assert_eq!(
                    self.level[p as usize] + 1,
                    self.level[node],
                    "edge {p} → {node} skips levels"
                );
                assert!(
                    self.height_ns[p as usize] > self.height_ns[node],
                    "height not decreasing along {p} → {node}"
                );
                assert!(
                    self.succs_of(p as usize).contains(&(node as u32)),
                    "transpose missing {p} → {node}"
                );
            }
            if self.level[node] > 0 && self.config.pattern != DagPattern::Trivial {
                assert!(
                    !self.preds_of(node).is_empty(),
                    "non-root node {node} has no predecessors"
                );
            }
        }
        assert_eq!(
            self.succs.len(),
            self.preds.len(),
            "transpose changed edge count"
        );
        assert_eq!(
            self.cp_ns,
            self.height_ns.iter().copied().max().unwrap_or(0)
        );
        assert!(
            self.critical.iter().any(|&c| c) || n == 0,
            "no node marked critical"
        );
    }
}

/// Ready-queue policy of the external scheduler in [`run_on_sim`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DagSched {
    /// Submit in the order nodes became ready.
    Fifo,
    /// Submit a uniformly random ready node (seeded) — the
    /// "work-stealing picks arbitrarily" baseline.
    RandomSteal(u64),
    /// Submit the ready node with the greatest remaining height — the
    /// critical-path-first list scheduler the runtime's priority lane
    /// approximates online.
    CriticalPath,
}

impl DagSched {
    /// Short stable name (table/CSV key).
    pub fn name(&self) -> &'static str {
        match self {
            DagSched::Fifo => "fifo",
            DagSched::RandomSteal(_) => "random",
            DagSched::CriticalPath => "critical-path",
        }
    }
}

/// Result of one simulated DAG execution.
#[derive(Clone, Copy, Debug)]
pub struct DagSimReport {
    /// Virtual makespan, ns.
    pub makespan_ns: u64,
    /// The schedule-independent lower bound for this worker count.
    pub bound_ns: u64,
    /// Nodes executed (must equal `spec.nodes()`).
    pub tasks: u64,
    /// Energy integrated over the run, J.
    pub energy_j: f64,
}

/// Executes `spec` on the simulator under `sched`, submitting a node only
/// when a core is free — the ready-queue *order* is therefore entirely the
/// policy's, not the simulator's FIFO. Returns the exact virtual makespan.
///
/// # Panics
/// Panics if the simulator deadlocks (no core frees while work remains),
/// which would indicate a generator bug — `validate()` rules it out.
pub fn run_on_sim(sim: &mut SimRuntime, spec: &DagSpec, sched: DagSched) -> DagSimReport {
    let n = spec.nodes();
    let workers = sim.spec().cores;
    let mut remaining: Vec<u32> = (0..n)
        .map(|i| spec.pred_off[i + 1] - spec.pred_off[i])
        .collect();
    let mut ready: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
    let mut rng = match sched {
        DagSched::RandomSteal(seed) => Some(StdRng::seed_from_u64(seed)),
        _ => None,
    };
    let t0 = sim.clock().now_ns();
    let e0 = sim.total_energy_j();
    let mut in_flight = 0usize;
    let mut done = 0u64;
    while done < n as u64 {
        while in_flight < workers && !ready.is_empty() {
            let pick = match sched {
                DagSched::Fifo => 0,
                DagSched::RandomSteal(_) => rng.as_mut().map_or(0, |r| r.gen_range(0..ready.len())),
                DagSched::CriticalPath => ready
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &node)| spec.height_ns[node])
                    .map_or(0, |(idx, _)| idx),
            };
            let node = ready.swap_remove(pick);
            // Keep FIFO order stable under swap_remove: pop from the
            // front instead.
            let node = if sched == DagSched::Fifo {
                ready.insert(0, node);
                ready.remove(0)
            } else {
                node
            };
            sim.submit(
                SimTask::new(spec.config.pattern.name(), spec.ops[node], spec.bytes[node])
                    .with_tag(node as u64),
            );
            in_flight += 1;
        }
        assert!(
            sim.step_boundary(),
            "simulator idle with {} nodes unfinished",
            n as u64 - done
        );
        for (tag, _t_ns) in sim.take_completions() {
            let node = tag as usize;
            done += 1;
            in_flight -= 1;
            for &s in spec.succs_of(node) {
                remaining[s as usize] -= 1;
                if remaining[s as usize] == 0 {
                    ready.push(s as usize);
                }
            }
        }
    }
    DagSimReport {
        makespan_ns: sim.clock().now_ns() - t0,
        bound_ns: spec.makespan_bound_ns(workers),
        tasks: done,
        energy_j: sim.total_energy_j() - e0,
    }
}

/// Execution trace of a real-pool DAG run: per-node run counts and
/// global begin/end sequence stamps, enough to check exactly-once and
/// dependency order after the fact.
#[derive(Debug)]
pub struct DagTrace {
    /// Times each node's body ran.
    pub runs: Vec<AtomicU64>,
    /// Global sequence number at body entry (0 = never ran).
    pub begin_seq: Vec<AtomicU64>,
    /// Global sequence number at body exit (0 = never finished).
    pub end_seq: Vec<AtomicU64>,
    seq: AtomicU64,
}

impl DagTrace {
    /// A trace for `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            runs: (0..n).map(|_| AtomicU64::new(0)).collect(),
            begin_seq: (0..n).map(|_| AtomicU64::new(0)).collect(),
            end_seq: (0..n).map(|_| AtomicU64::new(0)).collect(),
            seq: AtomicU64::new(1),
        }
    }

    /// Asserts every node ran exactly once and every edge's predecessor
    /// finished before its consumer began.
    ///
    /// # Panics
    /// Panics with a description on the first violation.
    pub fn assert_valid_execution(&self, spec: &DagSpec) {
        for node in 0..spec.nodes() {
            assert_eq!(
                self.runs[node].load(Ordering::Relaxed),
                1,
                "node {node} did not run exactly once"
            );
            let b = self.begin_seq[node].load(Ordering::Relaxed);
            let e = self.end_seq[node].load(Ordering::Relaxed);
            assert!(b > 0 && e > b, "node {node} has a torn trace ({b}, {e})");
            for &p in spec.preds_of(node) {
                let pe = self.end_seq[p as usize].load(Ordering::Relaxed);
                assert!(
                    pe > 0 && pe < b,
                    "node {node} began (seq {b}) before predecessor {p} ended (seq {pe})"
                );
            }
        }
    }
}

/// Result of one real-pool DAG execution.
#[derive(Clone, Copy, Debug)]
pub struct DagPoolReport {
    /// Wall-clock elapsed, ns.
    pub elapsed_ns: u64,
    /// Order-independent checksum over every node's computed value.
    pub checksum: u64,
    /// Nodes executed.
    pub nodes: u64,
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Real busywork standing in for `ops` operations (scaled by
/// `ops_scale` so property tests can shrink the grain): a seeded integer
/// recurrence whose result feeds the checksum, so the work cannot be
/// optimized away.
fn grind(seed: u64, iters: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..iters {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    x
}

/// Executes `spec` on the real pool through [`ThreadPool::dag_scope`],
/// passing each node's critical-path marking and height as its
/// [`DagHint`] so the runtime's priority lane sees exactly what the
/// offline generator computed. `ops_scale` maps modelled ops to busywork
/// iterations (use `1e-3`..`1e-2` in tests to keep runs short). Writes
/// the execution into `trace` (which must be sized for `spec.nodes()`).
pub fn run_on_pool_traced(
    pool: &ThreadPool,
    spec: &DagSpec,
    ops_scale: f64,
    trace: &DagTrace,
) -> DagPoolReport {
    run_on_pool_inner(pool, spec, ops_scale, trace, None)
}

/// [`run_on_pool`] with release/completion accounting folded into
/// `stats` (the `dag.*` gauge source — register it on the instance's
/// introspection facade so policies can see the frontier).
pub fn run_on_pool_observed(
    pool: &ThreadPool,
    spec: &DagSpec,
    ops_scale: f64,
    stats: std::sync::Arc<lg_core::DagStats>,
) -> DagPoolReport {
    let trace = DagTrace::new(spec.nodes());
    run_on_pool_inner(pool, spec, ops_scale, &trace, Some(stats))
}

fn run_on_pool_inner(
    pool: &ThreadPool,
    spec: &DagSpec,
    ops_scale: f64,
    trace: &DagTrace,
    stats: Option<std::sync::Arc<lg_core::DagStats>>,
) -> DagPoolReport {
    assert_eq!(trace.runs.len(), spec.nodes(), "trace sized for spec");
    let n = spec.nodes();
    let started = std::time::Instant::now();
    // An unregistered stats sink costs a handful of relaxed atomics per
    // node, so the unobserved path just gets a private one.
    let stats = stats.unwrap_or_else(lg_core::DagStats::new);
    // One shared context keeps the node closure at two words (ctx ref +
    // node index) so every body rides the zero-alloc inline tier.
    struct RunCtx<'a> {
        checksum: AtomicU64,
        trace: &'a DagTrace,
        iters: Vec<u64>,
    }
    let ctx = RunCtx {
        checksum: AtomicU64::new(0),
        trace,
        iters: (0..n)
            .map(|i| (spec.ops[i] * ops_scale).max(1.0) as u64)
            .collect(),
    };
    pool.dag_scope_observed(stats, |g| {
        let mut ids: Vec<DagNodeId> = Vec::with_capacity(n);
        let mut deps: Vec<DagNodeId> = Vec::new();
        for node in 0..n {
            deps.clear();
            deps.extend(spec.preds_of(node).iter().map(|&p| ids[p as usize]));
            let hint = DagHint {
                critical: spec.critical[node],
                height_ns: spec.height_ns[node],
            };
            let ctx = &ctx;
            let id = g.spawn_after_hinted(spec.config.pattern.name(), &deps, hint, move || {
                let t = ctx.trace;
                t.runs[node].fetch_add(1, Ordering::Relaxed);
                t.begin_seq[node].store(t.seq.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                let v = grind(splitmix(node as u64), ctx.iters[node]);
                ctx.checksum
                    .fetch_xor(v ^ splitmix(node as u64), Ordering::Relaxed);
                t.end_seq[node].store(t.seq.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
            });
            ids.push(id);
        }
    });
    let checksum = &ctx.checksum;
    DagPoolReport {
        elapsed_ns: started.elapsed().as_nanos() as u64,
        checksum: checksum.load(Ordering::Relaxed),
        nodes: n as u64,
    }
}

/// [`run_on_pool_traced`] without keeping the trace.
pub fn run_on_pool(pool: &ThreadPool, spec: &DagSpec, ops_scale: f64) -> DagPoolReport {
    let trace = DagTrace::new(spec.nodes());
    run_on_pool_traced(pool, spec, ops_scale, &trace)
}

/// The checksum `run_on_pool` must produce for `spec` at `ops_scale` —
/// computed sequentially, order-independent by construction (XOR).
pub fn expected_checksum(spec: &DagSpec, ops_scale: f64) -> u64 {
    let mut acc = 0u64;
    for node in 0..spec.nodes() {
        let iters = (spec.ops[node] * ops_scale).max(1.0) as u64;
        acc ^= grind(splitmix(node as u64), iters) ^ splitmix(node as u64);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_core::LookingGlass;
    use lg_metrics::PowerModel;
    use lg_runtime::PoolConfig;
    use lg_sim::MachineSpec;

    fn machine(cores: usize) -> MachineSpec {
        MachineSpec {
            cores,
            core_flops: 1e9,
            mem_bw: 1e12,
            power: PowerModel::new(10.0, 2.0),
            sched_overhead_ns: 0,
            stall_intensity: 0.5,
        }
    }

    fn cfg(pattern: DagPattern) -> DagConfig {
        DagConfig {
            pattern,
            width: 12,
            depth: 10,
            grain_ops: 1e5,
            grain_spread: 2.0,
            comm_bytes: 64.0,
            seed: 7,
        }
    }

    #[test]
    fn all_patterns_generate_valid_dags() {
        for p in DagPattern::ALL {
            let spec = generate(&cfg(p), &CostModel::default());
            spec.validate();
            assert!(spec.nodes() > 0);
        }
    }

    #[test]
    fn trivial_has_no_edges_and_cp_is_one_task() {
        let spec = generate(&cfg(DagPattern::Trivial), &CostModel::default());
        assert_eq!(spec.edges(), 0);
        let max_cost = spec.cost_ns.iter().copied().max().unwrap();
        assert_eq!(spec.cp_ns, max_cost);
    }

    #[test]
    fn tree_reduces_to_single_exit() {
        let spec = generate(&cfg(DagPattern::Tree), &CostModel::default());
        let exits = (0..spec.nodes())
            .filter(|&i| spec.succs_of(i).is_empty())
            .count();
        assert_eq!(exits, 1, "reduction must converge to one root");
    }

    #[test]
    fn sweep_contracts_as_the_window_slides() {
        let spec = generate(&cfg(DagPattern::Sweep), &CostModel::default());
        let mut pop = vec![0usize; spec.levels()];
        for &l in &spec.level {
            pop[l as usize] += 1;
        }
        // Trapezoid: starts at min(width, depth), sheds one cell per
        // elimination step, ends at the final diagonal.
        assert!(pop.windows(2).all(|w| w[1] <= w[0]));
        assert_eq!(*pop.last().unwrap(), 1);
        // Every level's diagonal gates the whole next level.
        let base: Vec<usize> = pop
            .iter()
            .scan(0usize, |b, &s| {
                let cur = *b;
                *b += s;
                Some(cur)
            })
            .collect();
        for l in 1..spec.levels() {
            for i in 0..pop[l] {
                let node = base[l] + i;
                assert!(
                    spec.preds_of(node).contains(&(base[l - 1] as u32)),
                    "node {node} not gated by previous diagonal"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(&cfg(DagPattern::Random), &CostModel::default());
        let b = generate(&cfg(DagPattern::Random), &CostModel::default());
        assert_eq!(a.preds, b.preds);
        assert_eq!(a.ops, b.ops);
        let mut c2 = cfg(DagPattern::Random);
        c2.seed = 8;
        let c = generate(&c2, &CostModel::default());
        assert_ne!(a.preds, c.preds, "different seed, different random DAG");
    }

    #[test]
    fn sim_runs_complete_and_respect_bound() {
        for p in DagPattern::ALL {
            let spec = generate(&cfg(p), &CostModel::default());
            for sched in [
                DagSched::Fifo,
                DagSched::RandomSteal(3),
                DagSched::CriticalPath,
            ] {
                let mut sim = SimRuntime::new(machine(4));
                let r = run_on_sim(&mut sim, &spec, sched);
                assert_eq!(r.tasks, spec.nodes() as u64, "{p:?}/{sched:?}");
                assert!(
                    r.makespan_ns >= r.bound_ns,
                    "{p:?}/{sched:?}: makespan {} under bound {}",
                    r.makespan_ns,
                    r.bound_ns
                );
            }
        }
    }

    #[test]
    fn critical_path_beats_fifo_on_imbalanced_sweep() {
        let mut c = cfg(DagPattern::Sweep);
        c.width = 8;
        c.depth = 64;
        c.grain_spread = 4.0;
        let spec = generate(&c, &CostModel::default());
        let run = |sched| {
            let mut sim = SimRuntime::new(machine(8));
            run_on_sim(&mut sim, &spec, sched).makespan_ns
        };
        let fifo = run(DagSched::Fifo);
        let cp = run(DagSched::CriticalPath);
        assert!(
            cp <= fifo,
            "critical-path ({cp}) should not lose to FIFO ({fifo}) on a sweep"
        );
    }

    #[test]
    fn pool_run_matches_expected_checksum() {
        let spec = generate(&cfg(DagPattern::Stencil1d), &CostModel::default());
        let pool = ThreadPool::new(LookingGlass::builder().build(), PoolConfig::with_workers(4));
        let trace = DagTrace::new(spec.nodes());
        let r = run_on_pool_traced(&pool, &spec, 1e-3, &trace);
        assert_eq!(r.checksum, expected_checksum(&spec, 1e-3));
        assert_eq!(r.nodes, spec.nodes() as u64);
        trace.assert_valid_execution(&spec);
    }
}
