//! 2-D heat diffusion (5-point stencil), row-blocked.
//!
//! The 2-D variant exists to exercise blocked decomposition: each task
//! owns a band of rows, so the chunk knob controls rows-per-task. Same
//! memory-bound character as [`crate::stencil1d`], with better per-task
//! arithmetic density.

use lg_runtime::ThreadPool;

/// A 2-D heat diffusion problem on an `rows × cols` grid.
pub struct Stencil2d {
    rows: usize,
    cols: usize,
    k: f64,
    bufs: [Vec<f64>; 2],
    front: usize,
    steps_done: usize,
}

impl Stencil2d {
    /// Creates a grid with a hot top edge.
    ///
    /// # Panics
    /// Panics if either dimension is < 3 or `k` is not in `(0, 0.25]`
    /// (2-D stability bound).
    pub fn new(rows: usize, cols: usize, k: f64) -> Self {
        assert!(rows >= 3 && cols >= 3, "grid must be at least 3x3");
        assert!(
            k > 0.0 && k <= 0.25,
            "diffusion constant must be in (0, 0.25] for 2-D stability"
        );
        let mut u = vec![0.0; rows * cols];
        u[..cols].fill(1.0);
        Self {
            rows,
            cols,
            k,
            bufs: [u.clone(), u],
            front: 0,
            steps_done: 0,
        }
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Timesteps completed.
    pub fn steps_done(&self) -> usize {
        self.steps_done
    }

    /// Current state (row-major).
    pub fn state(&self) -> &[f64] {
        &self.bufs[self.front]
    }

    /// Value at `(r, c)`.
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.state()[r * self.cols + c]
    }

    fn split_bufs(&mut self) -> (&[f64], &mut [f64]) {
        let (a, b) = self.bufs.split_at_mut(1);
        if self.front == 0 {
            (&a[0], &mut b[0])
        } else {
            (&b[0], &mut a[0])
        }
    }

    fn update_row(src: &[f64], dst: &mut [f64], cols: usize, k: f64, r: usize) {
        let base = r * cols;
        for c in 1..cols - 1 {
            let i = base + c;
            dst[i] = src[i]
                + k * (src[i - 1] + src[i + 1] + src[i - cols] + src[i + cols] - 4.0 * src[i]);
        }
        dst[base] = src[base];
        dst[base + cols - 1] = src[base + cols - 1];
    }

    /// Advances one timestep sequentially.
    pub fn step_seq(&mut self) {
        let cols = self.cols;
        let rows = self.rows;
        let k = self.k;
        let (src, dst) = self.split_bufs();
        for r in 1..rows - 1 {
            Self::update_row(src, dst, cols, k, r);
        }
        dst[..cols].copy_from_slice(&src[..cols]);
        dst[(rows - 1) * cols..].copy_from_slice(&src[(rows - 1) * cols..]);
        self.front ^= 1;
        self.steps_done += 1;
    }

    /// Advances one timestep on the pool, `rows_per_task` rows per task.
    pub fn step_parallel(&mut self, pool: &ThreadPool, rows_per_task: usize) {
        let cols = self.cols;
        let rows = self.rows;
        let k = self.k;
        let (src_buf, dst_buf) = self.split_bufs();
        let src: &[f64] = src_buf;
        let dst_ptr = SendPtr(dst_buf.as_mut_ptr());
        pool.parallel_for("stencil2d_band", 1..rows - 1, rows_per_task, move |r| {
            let base = r * cols;
            for c in 1..cols - 1 {
                let i = base + c;
                let v = src[i]
                    + k * (src[i - 1] + src[i + 1] + src[i - cols] + src[i + cols] - 4.0 * src[i]);
                // SAFETY: row r is owned by exactly one task; columns are
                // disjoint within the row; boundary rows are not written.
                unsafe { dst_ptr.write(i, v) };
            }
            unsafe {
                dst_ptr.write(base, src[base]);
                dst_ptr.write(base + cols - 1, src[base + cols - 1]);
            }
        });
        let (src_buf, dst_buf) = self.split_bufs();
        dst_buf[..cols].copy_from_slice(&src_buf[..cols]);
        dst_buf[(rows - 1) * cols..].copy_from_slice(&src_buf[(rows - 1) * cols..]);
        self.front ^= 1;
        self.steps_done += 1;
    }

    /// Runs `steps` parallel timesteps.
    pub fn run(&mut self, pool: &ThreadPool, steps: usize, rows_per_task: usize) {
        for _ in 0..steps {
            self.step_parallel(pool, rows_per_task);
        }
    }

    /// Sum of all grid values.
    pub fn checksum(&self) -> f64 {
        self.state().iter().sum()
    }
}

#[derive(Clone, Copy)]
struct SendPtr(*mut f64);

impl SendPtr {
    /// # Safety
    /// `i` must be in bounds and written by exactly one task.
    unsafe fn write(self, i: usize, v: f64) {
        unsafe { *self.0.add(i) = v }
    }
}

// SAFETY: used only for writes to disjoint rows (see step_parallel).
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_core::LookingGlass;
    use lg_runtime::PoolConfig;

    fn pool(workers: usize) -> ThreadPool {
        ThreadPool::new(
            LookingGlass::builder().build(),
            PoolConfig::with_workers(workers),
        )
    }

    #[test]
    fn heat_flows_down_from_top() {
        let mut s = Stencil2d::new(32, 32, 0.2);
        for _ in 0..50 {
            s.step_seq();
        }
        assert_eq!(s.at(0, 16), 1.0);
        assert!(s.at(1, 16) > 0.2);
        assert!(s.at(1, 16) > s.at(8, 16));
        assert!(s.at(8, 16) > s.at(20, 16));
    }

    #[test]
    fn parallel_matches_sequential() {
        let p = pool(3);
        let mut seq = Stencil2d::new(33, 17, 0.2);
        let mut par = Stencil2d::new(33, 17, 0.2);
        for _ in 0..25 {
            seq.step_seq();
            par.step_parallel(&p, 5);
        }
        assert_eq!(seq.state(), par.state());
    }

    #[test]
    fn band_size_invariant() {
        let p = pool(2);
        let mut a = Stencil2d::new(24, 24, 0.25);
        let mut b = Stencil2d::new(24, 24, 0.25);
        a.run(&p, 10, 1);
        b.run(&p, 10, 100);
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn values_in_unit_range() {
        let p = pool(2);
        let mut s = Stencil2d::new(20, 20, 0.25);
        s.run(&p, 100, 4);
        assert!(s.state().iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    #[should_panic(expected = "stability")]
    fn unstable_k_rejected() {
        let _ = Stencil2d::new(8, 8, 0.3);
    }

    #[test]
    fn symmetric_problem_stays_symmetric() {
        // Columns mirror-symmetric initial condition must stay symmetric.
        let p = pool(3);
        let mut s = Stencil2d::new(16, 16, 0.2);
        s.run(&p, 30, 3);
        for r in 0..16 {
            for c in 0..8 {
                let left = s.at(r, c);
                let right = s.at(r, 15 - c);
                assert!((left - right).abs() < 1e-12, "asymmetry at ({r},{c})");
            }
        }
    }
}
