//! Phase-alternating workload for the phase-aware adaptation experiment.
//!
//! Real applications alternate between solver phases with different
//! resource characters (assembly: memory-bound; integration:
//! compute-bound). A policy tuned for one phase is wrong for the next.
//! This module provides both the real two-kernel alternator and helpers
//! describing its simulated twin (built on
//! [`lg_sim::workload_model::PhasedSimWorkload`]).

use crate::compute::ComputeKernel;
use crate::stencil1d::Stencil1d;
use lg_runtime::ThreadPool;
use lg_sim::workload_model::PhasedSimWorkload;
use lg_sim::SimWorkload;

/// A workload alternating memory-bound and compute-bound phases.
pub struct PhasedWorkload {
    stencil: Stencil1d,
    kernel: ComputeKernel,
    /// Steps per phase.
    pub period: usize,
    step: usize,
}

/// Which phase is active.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseKind {
    /// Stencil (memory-bound) phase.
    Memory,
    /// Kernel (compute-bound) phase.
    Compute,
}

impl PhasedWorkload {
    /// Creates an alternator: stencil of `stencil_n` points, kernel of
    /// `kernel_n` × `kernel_iters`, switching every `period` steps.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn new(stencil_n: usize, kernel_n: usize, kernel_iters: usize, period: usize) -> Self {
        assert!(period > 0, "phase period must be positive");
        Self {
            stencil: Stencil1d::new(stencil_n, 0.25),
            kernel: ComputeKernel::new(kernel_n, kernel_iters),
            period,
            step: 0,
        }
    }

    /// The phase that the *next* step will execute.
    pub fn current_phase(&self) -> PhaseKind {
        if (self.step / self.period).is_multiple_of(2) {
            PhaseKind::Memory
        } else {
            PhaseKind::Compute
        }
    }

    /// Global step counter.
    pub fn step_index(&self) -> usize {
        self.step
    }

    /// Executes one step on the pool; emits phase markers on transitions.
    pub fn step(&mut self, pool: &ThreadPool, chunk: usize) -> PhaseKind {
        let phase = self.current_phase();
        let lg = pool.lg().clone();
        if self.step.is_multiple_of(self.period) {
            if self.step > 0 {
                lg.phase_end(match phase {
                    // The *previous* phase just ended.
                    PhaseKind::Memory => "compute",
                    PhaseKind::Compute => "memory",
                });
            }
            lg.phase_begin(match phase {
                PhaseKind::Memory => "memory",
                PhaseKind::Compute => "compute",
            });
        }
        match phase {
            PhaseKind::Memory => self.stencil.step_parallel(pool, chunk),
            PhaseKind::Compute => self.kernel.run_parallel(pool, chunk),
        }
        self.step += 1;
        phase
    }

    /// The simulated twin: memory phase vs compute phase of equal op
    /// volume, alternating every `period` steps.
    pub fn sim_workload(
        ops_per_step: f64,
        tasks_per_step: usize,
        period: usize,
    ) -> PhasedSimWorkload {
        PhasedSimWorkload::new(
            SimWorkload::stencil(ops_per_step, tasks_per_step),
            SimWorkload::compute(ops_per_step, tasks_per_step),
            period,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_core::LookingGlass;
    use lg_runtime::PoolConfig;

    fn pool(workers: usize) -> ThreadPool {
        ThreadPool::new(
            LookingGlass::builder().build(),
            PoolConfig::with_workers(workers),
        )
    }

    #[test]
    fn phases_alternate_on_period() {
        let p = pool(2);
        let mut w = PhasedWorkload::new(64, 64, 5, 3);
        let mut seen = Vec::new();
        for _ in 0..12 {
            seen.push(w.step(&p, 8));
        }
        use PhaseKind::*;
        assert_eq!(
            seen,
            vec![
                Memory, Memory, Memory, Compute, Compute, Compute, Memory, Memory, Memory, Compute,
                Compute, Compute
            ]
        );
    }

    #[test]
    fn phase_markers_emitted() {
        let lg = LookingGlass::builder().trace(256).build();
        let p = ThreadPool::new(lg.clone(), PoolConfig::with_workers(2));
        let mut w = PhasedWorkload::new(32, 32, 2, 2);
        for _ in 0..6 {
            w.step(&p, 4);
        }
        let recs = lg.trace().unwrap().records();
        let phase_events: Vec<&str> = recs
            .iter()
            .filter(|r| matches!(r.event.kind_str(), "phase_begin" | "phase_end"))
            .map(|r| r.event.kind_str())
            .collect();
        // Steps 0..6 with period 2: begins at step 0, 2, 4; ends at 2, 4.
        assert_eq!(
            phase_events.iter().filter(|k| **k == "phase_begin").count(),
            3
        );
        assert_eq!(
            phase_events.iter().filter(|k| **k == "phase_end").count(),
            2
        );
    }

    #[test]
    fn both_kernels_make_progress() {
        let p = pool(2);
        let mut w = PhasedWorkload::new(64, 16, 3, 1);
        w.step(&p, 8); // memory
        assert_eq!(w.stencil.steps_done(), 1);
        w.step(&p, 8); // compute
        assert!(w.kernel.checksum() != 0.0);
    }

    #[test]
    fn sim_twin_alternates_kinds() {
        let tw = PhasedWorkload::sim_workload(1e8, 8, 4);
        assert!(tw.step_batch(0).iter().all(|t| t.bytes > 0.0));
        assert!(tw.step_batch(4).iter().all(|t| t.bytes == 0.0));
    }
}
