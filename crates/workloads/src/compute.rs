//! Compute-bound kernel: iterated transcendental map per element.
//!
//! Each element runs `iters` rounds of a sin/sqrt mix entirely in
//! registers — negligible memory traffic, so throughput scales with cores
//! until the machine runs out of them. The compute-side contrast to the
//! stencils in every concurrency experiment.

use lg_runtime::ThreadPool;
use lg_sim::SimWorkload;

/// A compute-bound embarrassingly parallel kernel.
pub struct ComputeKernel {
    n: usize,
    iters: usize,
    out: Vec<f64>,
}

impl ComputeKernel {
    /// Creates a kernel over `n` elements, `iters` rounds each.
    ///
    /// # Panics
    /// Panics if `n` or `iters` is zero.
    pub fn new(n: usize, iters: usize) -> Self {
        assert!(
            n > 0 && iters > 0,
            "kernel needs positive size and iterations"
        );
        Self {
            n,
            iters,
            out: vec![0.0; n],
        }
    }

    /// The per-element function: `iters` rounds of a contraction map.
    /// Deterministic in `i`, so results are checkable.
    pub fn element(i: usize, iters: usize) -> f64 {
        let mut x = (i as f64 + 1.0) * 1e-3;
        for _ in 0..iters {
            x = (x * x + 0.25).sqrt().sin() + 0.5;
        }
        x
    }

    /// Runs sequentially (reference).
    pub fn run_seq(&mut self) {
        for i in 0..self.n {
            self.out[i] = Self::element(i, self.iters);
        }
    }

    /// Runs on the pool with the given chunk size.
    pub fn run_parallel(&mut self, pool: &ThreadPool, chunk: usize) {
        let iters = self.iters;
        let ptr = SendPtr(self.out.as_mut_ptr());
        pool.parallel_for("compute_chunk", 0..self.n, chunk, move |i| {
            // SAFETY: each index written by exactly one task.
            unsafe { ptr.write(i, Self::element(i, iters)) };
        });
    }

    /// Output state.
    pub fn output(&self) -> &[f64] {
        &self.out
    }

    /// Checksum of the output.
    pub fn checksum(&self) -> f64 {
        self.out.iter().sum()
    }

    /// The simulated twin: ~20 ops per inner iteration, zero traffic.
    pub fn sim_workload(n: usize, iters: usize, tasks_per_step: usize) -> SimWorkload {
        SimWorkload {
            name: "compute".into(),
            kind: lg_sim::WorkloadKind::ComputeBound,
            ops_per_step: n as f64 * iters as f64 * 20.0,
            tasks_per_step,
            bytes_per_op: 0.0,
        }
    }
}

#[derive(Clone, Copy)]
struct SendPtr(*mut f64);

impl SendPtr {
    /// # Safety
    /// `i` must be in bounds and written by exactly one task.
    unsafe fn write(self, i: usize, v: f64) {
        unsafe { *self.0.add(i) = v }
    }
}

// SAFETY: disjoint index writes only.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_core::LookingGlass;
    use lg_runtime::PoolConfig;

    fn pool(workers: usize) -> ThreadPool {
        ThreadPool::new(
            LookingGlass::builder().build(),
            PoolConfig::with_workers(workers),
        )
    }

    #[test]
    fn element_is_deterministic_and_bounded() {
        let a = ComputeKernel::element(17, 100);
        let b = ComputeKernel::element(17, 100);
        assert_eq!(a, b);
        assert!(a.is_finite());
        assert!(
            (0.0..2.0).contains(&a),
            "contraction keeps values bounded: {a}"
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let p = pool(3);
        let mut seq = ComputeKernel::new(500, 20);
        let mut par = ComputeKernel::new(500, 20);
        seq.run_seq();
        par.run_parallel(&p, 33);
        assert_eq!(seq.output(), par.output());
    }

    #[test]
    fn chunk_invariance() {
        let p = pool(2);
        let mut a = ComputeKernel::new(200, 10);
        let mut b = ComputeKernel::new(200, 10);
        a.run_parallel(&p, 1);
        b.run_parallel(&p, 200);
        assert_eq!(a.checksum(), b.checksum());
    }

    #[test]
    fn sim_twin_has_zero_traffic() {
        let w = ComputeKernel::sim_workload(1000, 50, 16);
        assert!(w.step_batch().iter().all(|t| t.bytes == 0.0));
        assert_eq!(w.step_batch().len(), 16);
    }

    #[test]
    #[should_panic(expected = "positive size")]
    fn zero_size_rejected() {
        let _ = ComputeKernel::new(0, 1);
    }
}
