//! Naive parallel Fibonacci — the classic tiny-task fork-join stressor.
//!
//! Useless as arithmetic, priceless as a scheduler microbenchmark: the
//! task graph is a binary tree of depth `n` whose leaves do almost no
//! work, so runtime overheads (spawn, steal, join) dominate. The cutoff
//! below which recursion goes sequential is a granularity knob in the
//! same family as chunk size.

use lg_runtime::ThreadPool;

/// Reference sequential Fibonacci.
pub fn fib_seq(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_seq(n - 1) + fib_seq(n - 2)
    }
}

/// Parallel Fibonacci with a sequential cutoff: subtrees with `n <
/// cutoff` run inline; larger ones fork both children onto the pool via a
/// scope.
pub fn fib_parallel(pool: &ThreadPool, n: u64, cutoff: u64) -> u64 {
    fn go(pool: &ThreadPool, n: u64, cutoff: u64) -> u64 {
        if n < 2 {
            return n;
        }
        if n < cutoff {
            return fib_seq(n);
        }
        let mut left = 0u64;
        let mut right = 0u64;
        pool.scope(|s| {
            let l = &mut left;
            let r = &mut right;
            s.spawn_named("fib_node", move || {
                *l = go_inner(n - 1, cutoff);
            });
            s.spawn_named("fib_node", move || {
                *r = go_inner(n - 2, cutoff);
            });
        });
        left + right
    }
    // Inner recursion runs fully sequential once on a worker: forking at
    // every level of a binary tree from scope-in-scope would require one
    // OS-thread-blocking barrier per node, which deadlocks small pools.
    // One level of parallel fork per scope is enough to exercise the
    // scheduler while remaining composable; deeper parallelism comes from
    // the caller running many roots.
    fn go_inner(n: u64, cutoff: u64) -> u64 {
        if n < 2 {
            n
        } else if n < cutoff {
            fib_seq(n)
        } else {
            go_inner(n - 1, cutoff) + go_inner(n - 2, cutoff)
        }
    }
    go(pool, n, cutoff)
}

/// Spawns `count` independent `fib(n)` roots and sums the results —
/// a throughput-style scheduler load with tunable task size via `n`.
pub fn fib_storm(pool: &ThreadPool, count: usize, n: u64) -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    let total = AtomicU64::new(0);
    pool.scope(|s| {
        let total = &total;
        for _ in 0..count {
            s.spawn_named("fib_root", move || {
                total.fetch_add(fib_seq(n), Ordering::Relaxed);
            });
        }
    });
    total.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_core::LookingGlass;
    use lg_runtime::{PoolConfig, ThreadPool};

    fn pool(workers: usize) -> ThreadPool {
        ThreadPool::new(
            LookingGlass::builder().build(),
            PoolConfig::with_workers(workers),
        )
    }

    #[test]
    fn sequential_values() {
        let expect = [0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55];
        for (n, &e) in expect.iter().enumerate() {
            assert_eq!(fib_seq(n as u64), e);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let p = pool(3);
        for n in [0, 1, 5, 10, 20] {
            assert_eq!(fib_parallel(&p, n, 10), fib_seq(n), "n = {n}");
        }
    }

    #[test]
    fn cutoff_extremes_agree() {
        let p = pool(2);
        assert_eq!(fib_parallel(&p, 18, 2), fib_seq(18));
        assert_eq!(fib_parallel(&p, 18, 100), fib_seq(18));
    }

    #[test]
    fn storm_sums_roots() {
        let p = pool(4);
        assert_eq!(fib_storm(&p, 50, 10), 50 * fib_seq(10));
    }

    #[test]
    fn storm_profiles_roots() {
        let p = pool(2);
        fib_storm(&p, 25, 5);
        assert_eq!(p.lg().profiles().get("fib_root").unwrap().count, 25);
    }
}
