//! Two-tenant colocation scenario: a latency-SLO serving tenant and a
//! throughput-oriented batch tenant sharing one machine under an
//! `lg_core::Arbiter`.
//!
//! The pieces here are the *tenant-side* halves of the multi-tenancy
//! evaluation (fig 10): each wraps a full looking-glass instance and
//! publishes exactly the signals the machine-wide governor arbitrates
//! over.
//!
//! * [`ServeTenant`] — the open-loop serving pipeline from
//!   [`crate::serve`], with the **bulkhead limit as its thread knob**:
//!   one concurrency slot stands in for one worker thread, so the
//!   arbiter moving "threads" between tenants moves real admission
//!   capacity. Pressure signal: the end-to-end window p99 against the
//!   deadline budget.
//! * [`BatchTenant`] — a job stream on a simulated machine slice
//!   ([`lg_sim::MachineShares`]), stepped in lockstep with the
//!   authoritative clock via [`lg_sim::SimRuntime::run_until`]. It
//!   publishes `batch.power_w` (mean package watts over the last step)
//!   for the governor's power envelope and `batch.backlog` for its own
//!   local policies.
//! * [`BatchTenant::install_greedy`] — a deliberately selfish
//!   tenant-local policy that doubles the batch thread cap whenever
//!   backlog builds. During a memory-storm phase the extra threads add
//!   power but no throughput; the tenant's own regression watchdog
//!   ([`BatchTenant::install_watchdog`], rate = jobs per joule) rolls
//!   the grab back, and the rollback record is what the arbiter's
//!   noisy-neighbor quarantine keys on.

use lg_core::{
    AdmissionGate, Brownout, BrownoutPolicy, Bulkhead, FnPolicy, Knob, LookingGlass,
    PolicyDecision, RegressionWatchdog, VirtualClock,
};
use lg_metrics::CounterRegistry;
use lg_net::{ReliableConfig, ReliableLink, TransportCost};
use lg_sim::{MachineSpec, SimRunReport, SimRuntime, SimTask};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::serve::{ServeConfig, ServeEngine, ServeReport};

/// A latency-class tenant: the serving pipeline with its bulkhead limit
/// exposed as the arbitrated thread knob (`serve.bulkhead_limit`).
pub struct ServeTenant {
    lg: Arc<LookingGlass>,
    counters: Arc<CounterRegistry>,
    engine: ServeEngine,
    control_period_ns: u64,
}

impl ServeTenant {
    /// Builds the tenant on the shared authoritative `clock`. `knee` is
    /// both the service-stage contention knee and the bulkhead ceiling —
    /// the most threads the arbiter could ever grant. The wire is clean;
    /// in this scenario the noise comes from the sibling tenant, not the
    /// network.
    pub fn new(clock: Arc<VirtualClock>, knee: usize, seed: u64) -> Self {
        let lg = LookingGlass::builder().clock(clock).build();
        let counters = Arc::new(CounterRegistry::new());
        lg.introspection().register_counters(counters.clone());

        let bulkhead = Bulkhead::new("serve.bulkhead_limit", 1, knee as i64, knee as i64);
        let gate = AdmissionGate::new("serve.admit_rate", 100, 1_000_000, 1_000_000, 64.0, 8.0);
        let brownout = Brownout::new("serve.shed_level");
        let link = ReliableLink::new(TransportCost::cluster(), ReliableConfig::default(), seed);

        lg.knobs().register(bulkhead.limit_knob().clone());
        lg.knobs().register(gate.rate_knob().clone());
        lg.knobs().register(brownout.level_knob().clone());
        lg.knobs().register(link.retry_budget_knob().clone());

        let config = ServeConfig {
            knee,
            ..ServeConfig::default()
        };
        let control_period_ns = config.control_period_ns;
        let mut engine = ServeEngine::new(link, config, bulkhead, gate, brownout);
        engine.bind_introspection(lg.introspection());
        engine.bind_metrics(&counters);
        Self {
            lg,
            counters,
            engine,
            control_period_ns,
        }
    }

    /// The tenant's looking-glass instance (what gets admitted to the
    /// arbiter).
    pub fn lg(&self) -> &Arc<LookingGlass> {
        &self.lg
    }

    /// The tenant's counter registry.
    pub fn counters(&self) -> &Arc<CounterRegistry> {
        &self.counters
    }

    /// The engine's control-round period, ns.
    pub fn control_period_ns(&self) -> u64 {
        self.control_period_ns
    }

    /// Installs the tenant-local brownout: sheds optional work when the
    /// end-to-end window p99 crosses `shed_above_ns`, recovers below
    /// half that. The *thread* side of adaptation belongs to the
    /// arbiter; shedding stays with the tenant because only it knows
    /// which requests are optional.
    pub fn install_brownout(&self, shed_above_ns: f64) {
        let e2e = self
            .lg
            .introspection()
            .metric_id("serve.p99_window_ns")
            .expect("serve gauges bound");
        self.lg.policy_engine().register_periodic(
            BrownoutPolicy::new("serve.shed_level", e2e, shed_above_ns, shed_above_ns / 2.0)
                .with_max_level(4),
            self.control_period_ns,
            0,
        );
    }

    /// Runs the arrival stream to completion (see
    /// [`ServeEngine::run`]), invoking `on_round` each control round.
    pub fn run(
        &mut self,
        arrivals: &[crate::serve::Request],
        on_round: impl FnMut(u64),
    ) -> ServeReport {
        self.engine.run(arrivals, on_round)
    }

    /// The engine (for gauges and reports).
    pub fn engine(&self) -> &ServeEngine {
        &self.engine
    }
}

/// A batch-class tenant: a deterministic job stream on a simulated
/// machine slice, stepped in lockstep with the authoritative clock.
pub struct BatchTenant {
    rt: SimRuntime,
    jobs_per_sec: f64,
    job_ops: f64,
    horizon_ns: u64,
    storm: Option<(u64, u64)>,
    calm_bpo: f64,
    storm_bpo: f64,
    next_job: u64,
    jobs_done: Arc<AtomicU64>,
    /// f64 bits: total ops progressed (partial progress included). Ops
    /// are continuous where job completions are quantized (a storm job
    /// outlives many rounds), so the watchdog's efficiency signal diffs
    /// ops, not jobs.
    ops_done: Arc<AtomicU64>,
    good_jobs: u64,
    power_w: Arc<AtomicU64>,
    backlog: Arc<AtomicU64>,
}

impl BatchTenant {
    /// Builds the tenant on its own machine slice. `spec` should come
    /// from [`lg_sim::MachineShares::sub_spec`] of the colocated host;
    /// jobs are sized to 1 ms of one core's compute. Arrivals are
    /// deterministic (job `k` due at `k / jobs_per_sec`) and stop at
    /// `horizon_ns`.
    ///
    /// The slice runs on its **own** virtual clock, advanced to the
    /// authoritative time by each [`BatchTenant::step`] — the governor
    /// owns the cadence, the tenant only ever catches up to it.
    pub fn new(spec: MachineSpec, jobs_per_sec: f64, horizon_ns: u64) -> Self {
        assert!(jobs_per_sec > 0.0, "batch tenant needs a job rate");
        let job_ops = spec.core_flops * 1e-3;
        let rt = SimRuntime::new(spec);
        let power_w = Arc::new(AtomicU64::new(0f64.to_bits()));
        let pw = power_w.clone();
        rt.lg()
            .introspection()
            .register_gauge("batch.power_w", move || {
                f64::from_bits(pw.load(Ordering::Relaxed))
            });
        let backlog = Arc::new(AtomicU64::new(0));
        let bl = backlog.clone();
        rt.lg()
            .introspection()
            .register_gauge("batch.backlog", move || bl.load(Ordering::Relaxed) as f64);
        Self {
            rt,
            jobs_per_sec,
            job_ops,
            horizon_ns,
            storm: None,
            calm_bpo: 0.25,
            storm_bpo: 100.0,
            next_job: 0,
            jobs_done: Arc::new(AtomicU64::new(0)),
            ops_done: Arc::new(AtomicU64::new(0f64.to_bits())),
            good_jobs: 0,
            power_w,
            backlog,
        }
    }

    /// Declares a memory-storm window `[start_ns, end_ns)`: jobs
    /// arriving inside it are bandwidth bombs (100 bytes/op — far past
    /// any slice's roofline knee), outside it they are compute-bound
    /// (0.25 bytes/op). During the storm, extra threads add power but
    /// no throughput — the noisy-neighbor signature.
    pub fn with_storm(mut self, start_ns: u64, end_ns: u64) -> Self {
        assert!(start_ns < end_ns, "storm window must be non-empty");
        self.storm = Some((start_ns, end_ns));
        self
    }

    /// The tenant's looking-glass instance.
    pub fn lg(&self) -> &Arc<LookingGlass> {
        self.rt.lg()
    }

    /// Jobs completed in total (shared counter, live).
    pub fn jobs_done(&self) -> u64 {
        self.jobs_done.load(Ordering::Relaxed)
    }

    /// Jobs completed while the authoritative clock was still inside the
    /// arrival horizon — the goodput contribution.
    pub fn good_jobs(&self) -> u64 {
        self.good_jobs
    }

    /// Current backlog (queued + in flight).
    pub fn backlog(&self) -> u64 {
        self.backlog.load(Ordering::Relaxed)
    }

    /// Total ops advanced on the slice so far, including partial progress
    /// on in-flight jobs — the continuous signal the watchdog rates.
    pub fn ops_progressed(&self) -> f64 {
        f64::from_bits(self.ops_done.load(Ordering::Relaxed))
    }

    /// Advances the slice to the authoritative time `now_ns`: submits
    /// every job due by then and runs the machine up to the boundary.
    /// Refreshes `batch.power_w` (mean watts over the step) and
    /// `batch.backlog`. Returns the slice's run report.
    pub fn step(&mut self, now_ns: u64) -> SimRunReport {
        loop {
            let due = (self.next_job as f64 / self.jobs_per_sec * 1e9) as u64;
            if due > now_ns || due >= self.horizon_ns {
                break;
            }
            let in_storm = self.storm.is_some_and(|(s, e)| due >= s && due < e);
            let bpo = if in_storm {
                self.storm_bpo
            } else {
                self.calm_bpo
            };
            let name = if in_storm { "storm" } else { "batch" };
            self.rt
                .submit(SimTask::new(name, self.job_ops, self.job_ops * bpo));
            self.next_job += 1;
        }
        let r = self.rt.run_until(now_ns);
        self.jobs_done.fetch_add(r.tasks, Ordering::Relaxed);
        self.ops_done
            .store(self.rt.total_ops_progressed().to_bits(), Ordering::Relaxed);
        if now_ns <= self.horizon_ns {
            self.good_jobs += r.tasks;
        }
        if r.elapsed_ns > 0 {
            let mean_w = r.energy_j / (r.elapsed_ns as f64 * 1e-9);
            self.power_w.store(mean_w.to_bits(), Ordering::Relaxed);
        }
        self.backlog
            .store(self.rt.backlog() as u64, Ordering::Relaxed);
        r
    }

    /// Installs the selfish scale-up policy: whenever backlog exceeds
    /// `backlog_threshold` jobs, double the local `thread_cap` (up to
    /// the slice's core count). Healthy when work is compute-bound;
    /// pure power waste during a memory storm — which is exactly the
    /// behaviour the watchdog + arbiter quarantine are there to punish.
    pub fn install_greedy(&self, backlog_threshold: u64, period_ns: u64) {
        let backlog = self.backlog.clone();
        let cap = self.rt.cap_knob().clone();
        let max = self.rt.spec().cores as i64;
        self.rt.lg().policy_engine().register_periodic(
            FnPolicy::new("greedy-scale-up", move |_, _, _| {
                let cur = cap.get();
                if backlog.load(Ordering::Relaxed) > backlog_threshold && cur < max {
                    PolicyDecision::set("thread_cap", (cur * 2).min(max))
                } else {
                    PolicyDecision::noop()
                }
            }),
            period_ns,
            0,
        );
    }

    /// Installs the tenant's own regression watchdog over **efficiency**
    /// (ops per joule ≈ ops-per-round / mean watts): any actuation
    /// followed by an efficiency collapse of more than `drop_frac` is
    /// rolled back through the journal — and the rollback record is the
    /// arbiter's quarantine signal.
    pub fn install_watchdog(&self, drop_frac: f64, period_ns: u64) {
        let ops = self.ops_done.clone();
        let power = self.power_w.clone();
        let mut last = 0f64;
        let lg = self.rt.lg();
        lg.policy_engine().register_periodic(
            RegressionWatchdog::new(
                lg.policy_engine().journal().clone(),
                move || {
                    let o = f64::from_bits(ops.load(Ordering::Relaxed));
                    let dops = (o - last).max(0.0);
                    last = o;
                    dops / f64::from_bits(power.load(Ordering::Relaxed)).max(1.0)
                },
                drop_frac,
            )
            .with_ignored_actor("arbiter"),
            period_ns,
            0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_core::Clock;
    use lg_sim::MachineShares;

    fn slice(threads: usize) -> MachineSpec {
        MachineShares::new(MachineSpec::server32()).sub_spec(threads)
    }

    #[test]
    fn batch_tenant_keeps_up_with_feasible_load() {
        // 8 cores × 1k jobs/s-per-core capacity against 4k jobs/s.
        let mut t = BatchTenant::new(slice(8), 4_000.0, 100_000_000);
        for k in 1..=20u64 {
            t.step(k * 5_000_000);
        }
        // 100 ms × 4k/s = 400 jobs, minus at most a step of slack.
        assert!(t.jobs_done() >= 380, "done {}", t.jobs_done());
        assert!(t.backlog() < 30, "backlog {}", t.backlog());
        assert_eq!(t.lg().clock().now_ns(), 100_000_000);
    }

    #[test]
    fn storm_jobs_stall_and_build_backlog() {
        let mut t = BatchTenant::new(slice(8), 4_000.0, 100_000_000).with_storm(0, 100_000_000);
        for k in 1..=10u64 {
            t.step(k * 10_000_000);
        }
        // Bandwidth-bound: the slice's knee for 100 B/op sits far below
        // one core, so almost nothing completes.
        assert!(t.jobs_done() < 40, "done {}", t.jobs_done());
        assert!(t.backlog() > 300, "backlog {}", t.backlog());
    }

    #[test]
    fn power_gauge_tracks_mean_watts() {
        let mut t = BatchTenant::new(slice(16), 8_000.0, 1_000_000_000);
        t.step(50_000_000);
        let w = t.lg().snapshot().value_by_name("batch.power_w").unwrap();
        // Slice idle power is 12.5 W; 16 busy cores add up to 72 W.
        assert!(w > 12.0 && w < 90.0, "mean power {w}");
    }

    #[test]
    fn greedy_grows_cap_and_watchdog_rolls_it_back_in_storm() {
        let mut t =
            BatchTenant::new(slice(16), 8_000.0, 1_000_000_000).with_storm(0, 1_000_000_000);
        t.lg().knobs().set("thread_cap", 4);
        t.install_greedy(100, 10_000_000);
        t.install_watchdog(0.25, 10_000_000);
        let mut rolled_back = false;
        for k in 1..=40u64 {
            let now = k * 10_000_000;
            t.step(now);
            t.lg().policy_engine().step(now);
            rolled_back |= t
                .lg()
                .knobs()
                .journal()
                .records()
                .iter()
                .any(|r| r.rolled_back);
        }
        let grabbed = t
            .lg()
            .knobs()
            .journal()
            .records()
            .iter()
            .any(|r| r.policy == "greedy-scale-up");
        assert!(grabbed, "greedy policy never fired");
        assert!(rolled_back, "watchdog never rolled the grab back");
    }

    #[test]
    fn serve_tenant_exposes_arbitrable_knob_and_pressure() {
        let clock = Arc::new(VirtualClock::new());
        let t = ServeTenant::new(clock, 32, 7);
        assert_eq!(t.lg().knobs().value("serve.bulkhead_limit"), Some(32));
        assert!(t
            .lg()
            .introspection()
            .metric_id("serve.p99_window_ns")
            .is_some());
    }
}
