//! Two-tenant colocation scenario: a latency-SLO serving tenant and a
//! throughput-oriented batch tenant sharing one machine under an
//! `lg_core::Arbiter`.
//!
//! The pieces here are the *tenant-side* halves of the multi-tenancy
//! evaluation (fig 10): each wraps a full looking-glass instance and
//! publishes exactly the signals the machine-wide governor arbitrates
//! over.
//!
//! * [`ServeTenant`] — the open-loop serving pipeline from
//!   [`crate::serve`], with the **bulkhead limit as its thread knob**:
//!   one concurrency slot stands in for one worker thread, so the
//!   arbiter moving "threads" between tenants moves real admission
//!   capacity. Pressure signal: the end-to-end window p99 against the
//!   deadline budget.
//! * [`BatchTenant`] — a job stream on a simulated machine slice
//!   ([`lg_sim::MachineShares`]), stepped in lockstep with the
//!   authoritative clock via [`lg_sim::SimRuntime::run_until`]. It
//!   publishes `batch.power_w` (mean package watts over the last step)
//!   for the governor's power envelope and `batch.backlog` for its own
//!   local policies.
//! * [`BatchTenant::install_greedy`] — a deliberately selfish
//!   tenant-local policy that doubles the batch thread cap whenever
//!   backlog builds. During a memory-storm phase the extra threads add
//!   power but no throughput; the tenant's own regression watchdog
//!   ([`BatchTenant::install_watchdog`], rate = jobs per joule) rolls
//!   the grab back, and the rollback record is what the arbiter's
//!   noisy-neighbor quarantine keys on.
//! * [`DagTenant`] — a dependency graph ([`crate::dag::DagSpec`]) drained
//!   on its own machine slice in lockstep with the authoritative clock
//!   ([`lg_sim::SimRuntime::run_until_event`] releases successors at the
//!   exact completion instant instead of batching them to the round
//!   boundary). Its demand profile comes from live
//!   [`DagStats`]: useful width = the ready frontier, so the governor
//!   preempts *toward* it while the frontier is wide and takes the
//!   threads back as the critical-path tail sets in.
//!
//! Each tenant exposes a `demand_probe()` — the native
//! [`DemandProfile`] publisher its admission `TenantSpec` installs via
//! `with_demand_probe` — alongside the legacy pressure-metric path, so
//! experiments can compare pressure-only and demand-aware arbitration
//! over identical workloads.

use lg_core::dag::DagStats;
use lg_core::{
    admission::serve_demand, AdmissionGate, Brownout, BrownoutPolicy, Bulkhead, DemandProbe,
    DemandProfile, FnPolicy, Knob, LookingGlass, PolicyDecision, RegressionWatchdog, VirtualClock,
};
use lg_metrics::CounterRegistry;
use lg_net::{ReliableConfig, ReliableLink, TransportCost};
use lg_sim::{MachineSpec, SimRunReport, SimRuntime, SimTask};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::serve::{ServeConfig, ServeEngine, ServeReport};

/// A latency-class tenant: the serving pipeline with its bulkhead limit
/// exposed as the arbitrated thread knob (`serve.bulkhead_limit`).
pub struct ServeTenant {
    lg: Arc<LookingGlass>,
    counters: Arc<CounterRegistry>,
    engine: ServeEngine,
    control_period_ns: u64,
    knee: usize,
}

impl ServeTenant {
    /// Builds the tenant on the shared authoritative `clock`. `knee` is
    /// both the service-stage contention knee and the bulkhead ceiling —
    /// the most threads the arbiter could ever grant. The wire is clean;
    /// in this scenario the noise comes from the sibling tenant, not the
    /// network.
    pub fn new(clock: Arc<VirtualClock>, knee: usize, seed: u64) -> Self {
        let lg = LookingGlass::builder().clock(clock).build();
        let counters = Arc::new(CounterRegistry::new());
        lg.introspection().register_counters(counters.clone());

        let bulkhead = Bulkhead::new("serve.bulkhead_limit", 1, knee as i64, knee as i64);
        let gate = AdmissionGate::new("serve.admit_rate", 100, 1_000_000, 1_000_000, 64.0, 8.0);
        let brownout = Brownout::new("serve.shed_level");
        let link = ReliableLink::new(TransportCost::cluster(), ReliableConfig::default(), seed);

        lg.knobs().register(bulkhead.limit_knob().clone());
        lg.knobs().register(gate.rate_knob().clone());
        lg.knobs().register(brownout.level_knob().clone());
        lg.knobs().register(link.retry_budget_knob().clone());

        let config = ServeConfig {
            knee,
            ..ServeConfig::default()
        };
        let control_period_ns = config.control_period_ns;
        let mut engine = ServeEngine::new(link, config, bulkhead, gate, brownout);
        engine.bind_introspection(lg.introspection());
        engine.bind_metrics(&counters);
        Self {
            lg,
            counters,
            engine,
            control_period_ns,
            knee,
        }
    }

    /// The serve plane's native demand publisher
    /// ([`lg_core::admission::serve_demand`]): width from live queue
    /// depth + in-flight with burst headroom, pinned to the bulkhead
    /// ceiling while the p99 misses `p99_slo_ns` or the shed counter is
    /// still climbing.
    pub fn demand_probe(&self, p99_slo_ns: f64) -> DemandProbe {
        let max_width = self.knee as i64;
        let last_shed = Arc::new(AtomicU64::new(0));
        Arc::new(move |snap, alloc| {
            let pressure = snap
                .value_by_name("serve.p99_window_ns")
                .map(|v| v / p99_slo_ns)
                .unwrap_or(0.0);
            let queue = snap.value_by_name("serve.queue_depth").unwrap_or(0.0);
            let in_flight = snap.value_by_name("serve.in_flight").unwrap_or(0.0);
            let shed = snap.counter("serve.shed").unwrap_or(0);
            let shedding = shed > last_shed.swap(shed, Ordering::Relaxed);
            serve_demand(pressure, queue, in_flight, shedding, max_width, alloc)
        })
    }

    /// The tenant's looking-glass instance (what gets admitted to the
    /// arbiter).
    pub fn lg(&self) -> &Arc<LookingGlass> {
        &self.lg
    }

    /// The tenant's counter registry.
    pub fn counters(&self) -> &Arc<CounterRegistry> {
        &self.counters
    }

    /// The engine's control-round period, ns.
    pub fn control_period_ns(&self) -> u64 {
        self.control_period_ns
    }

    /// Installs the tenant-local brownout: sheds optional work when the
    /// end-to-end window p99 crosses `shed_above_ns`, recovers below
    /// half that. The *thread* side of adaptation belongs to the
    /// arbiter; shedding stays with the tenant because only it knows
    /// which requests are optional.
    pub fn install_brownout(&self, shed_above_ns: f64) {
        let e2e = self
            .lg
            .introspection()
            .metric_id("serve.p99_window_ns")
            .expect("serve gauges bound");
        self.lg.policy_engine().register_periodic(
            BrownoutPolicy::new("serve.shed_level", e2e, shed_above_ns, shed_above_ns / 2.0)
                .with_max_level(4),
            self.control_period_ns,
            0,
        );
    }

    /// Runs the arrival stream to completion (see
    /// [`ServeEngine::run`]), invoking `on_round` each control round.
    pub fn run(
        &mut self,
        arrivals: &[crate::serve::Request],
        on_round: impl FnMut(u64),
    ) -> ServeReport {
        self.engine.run(arrivals, on_round)
    }

    /// The engine (for gauges and reports).
    pub fn engine(&self) -> &ServeEngine {
        &self.engine
    }
}

/// A batch-class tenant: a deterministic job stream on a simulated
/// machine slice, stepped in lockstep with the authoritative clock.
pub struct BatchTenant {
    rt: SimRuntime,
    jobs_per_sec: f64,
    job_ops: f64,
    horizon_ns: u64,
    storm: Option<(u64, u64)>,
    calm_bpo: f64,
    storm_bpo: f64,
    next_job: u64,
    jobs_done: Arc<AtomicU64>,
    /// f64 bits: total ops progressed (partial progress included). Ops
    /// are continuous where job completions are quantized (a storm job
    /// outlives many rounds), so the watchdog's efficiency signal diffs
    /// ops, not jobs.
    ops_done: Arc<AtomicU64>,
    good_jobs: u64,
    power_w: Arc<AtomicU64>,
    backlog: Arc<AtomicU64>,
}

impl BatchTenant {
    /// Builds the tenant on its own machine slice. `spec` should come
    /// from [`lg_sim::MachineShares::sub_spec`] of the colocated host;
    /// jobs are sized to 1 ms of one core's compute. Arrivals are
    /// deterministic (job `k` due at `k / jobs_per_sec`) and stop at
    /// `horizon_ns`.
    ///
    /// The slice runs on its **own** virtual clock, advanced to the
    /// authoritative time by each [`BatchTenant::step`] — the governor
    /// owns the cadence, the tenant only ever catches up to it.
    pub fn new(spec: MachineSpec, jobs_per_sec: f64, horizon_ns: u64) -> Self {
        assert!(jobs_per_sec > 0.0, "batch tenant needs a job rate");
        let job_ops = spec.core_flops * 1e-3;
        let rt = SimRuntime::new(spec);
        let power_w = Arc::new(AtomicU64::new(0f64.to_bits()));
        let pw = power_w.clone();
        rt.lg()
            .introspection()
            .register_gauge("batch.power_w", move || {
                f64::from_bits(pw.load(Ordering::Relaxed))
            });
        let backlog = Arc::new(AtomicU64::new(0));
        let bl = backlog.clone();
        rt.lg()
            .introspection()
            .register_gauge("batch.backlog", move || bl.load(Ordering::Relaxed) as f64);
        Self {
            rt,
            jobs_per_sec,
            job_ops,
            horizon_ns,
            storm: None,
            calm_bpo: 0.25,
            storm_bpo: 100.0,
            next_job: 0,
            jobs_done: Arc::new(AtomicU64::new(0)),
            ops_done: Arc::new(AtomicU64::new(0f64.to_bits())),
            good_jobs: 0,
            power_w,
            backlog,
        }
    }

    /// Declares a memory-storm window `[start_ns, end_ns)`: jobs
    /// arriving inside it are bandwidth bombs (100 bytes/op — far past
    /// any slice's roofline knee), outside it they are compute-bound
    /// (0.25 bytes/op). During the storm, extra threads add power but
    /// no throughput — the noisy-neighbor signature.
    pub fn with_storm(mut self, start_ns: u64, end_ns: u64) -> Self {
        assert!(start_ns < end_ns, "storm window must be non-empty");
        self.storm = Some((start_ns, end_ns));
        self
    }

    /// The tenant's looking-glass instance.
    pub fn lg(&self) -> &Arc<LookingGlass> {
        self.rt.lg()
    }

    /// Jobs completed in total (shared counter, live).
    pub fn jobs_done(&self) -> u64 {
        self.jobs_done.load(Ordering::Relaxed)
    }

    /// Jobs completed while the authoritative clock was still inside the
    /// arrival horizon — the goodput contribution.
    pub fn good_jobs(&self) -> u64 {
        self.good_jobs
    }

    /// Current backlog (queued + in flight).
    pub fn backlog(&self) -> u64 {
        self.backlog.load(Ordering::Relaxed)
    }

    /// Total ops advanced on the slice so far, including partial progress
    /// on in-flight jobs — the continuous signal the watchdog rates.
    pub fn ops_progressed(&self) -> f64 {
        f64::from_bits(self.ops_done.load(Ordering::Relaxed))
    }

    /// Advances the slice to the authoritative time `now_ns`: submits
    /// every job due by then and runs the machine up to the boundary.
    /// Refreshes `batch.power_w` (mean watts over the step) and
    /// `batch.backlog`. Returns the slice's run report.
    pub fn step(&mut self, now_ns: u64) -> SimRunReport {
        loop {
            let due = (self.next_job as f64 / self.jobs_per_sec * 1e9) as u64;
            if due > now_ns || due >= self.horizon_ns {
                break;
            }
            let in_storm = self.storm.is_some_and(|(s, e)| due >= s && due < e);
            let bpo = if in_storm {
                self.storm_bpo
            } else {
                self.calm_bpo
            };
            let name = if in_storm { "storm" } else { "batch" };
            self.rt
                .submit(SimTask::new(name, self.job_ops, self.job_ops * bpo));
            self.next_job += 1;
        }
        let r = self.rt.run_until(now_ns);
        self.jobs_done.fetch_add(r.tasks, Ordering::Relaxed);
        self.ops_done
            .store(self.rt.total_ops_progressed().to_bits(), Ordering::Relaxed);
        if now_ns <= self.horizon_ns {
            self.good_jobs += r.tasks;
        }
        if r.elapsed_ns > 0 {
            let mean_w = r.energy_j / (r.elapsed_ns as f64 * 1e-9);
            self.power_w.store(mean_w.to_bits(), Ordering::Relaxed);
        }
        self.backlog
            .store(self.rt.backlog() as u64, Ordering::Relaxed);
        r
    }

    /// The batch plane's native demand publisher: useful width is the
    /// live backlog (each queued or in-flight job occupies one core)
    /// capped at the slice's core count — an idle batch tenant offers
    /// its share back, a backlogged one claims every core it has.
    pub fn demand_probe(&self) -> DemandProbe {
        let cores = self.rt.spec().cores as f64;
        Arc::new(move |snap, alloc| {
            let backlog = snap.value_by_name("batch.backlog").unwrap_or(0.0);
            DemandProfile::saturating(lg_core::DemandClass::Batch, 0.0, backlog.min(cores), alloc)
        })
    }

    /// Installs the selfish scale-up policy: whenever backlog exceeds
    /// `backlog_threshold` jobs, double the local `thread_cap` (up to
    /// the slice's core count). Healthy when work is compute-bound;
    /// pure power waste during a memory storm — which is exactly the
    /// behaviour the watchdog + arbiter quarantine are there to punish.
    pub fn install_greedy(&self, backlog_threshold: u64, period_ns: u64) {
        let backlog = self.backlog.clone();
        let cap = self.rt.cap_knob().clone();
        let max = self.rt.spec().cores as i64;
        self.rt.lg().policy_engine().register_periodic(
            FnPolicy::new("greedy-scale-up", move |_, _, _| {
                let cur = cap.get();
                if backlog.load(Ordering::Relaxed) > backlog_threshold && cur < max {
                    PolicyDecision::set("thread_cap", (cur * 2).min(max))
                } else {
                    PolicyDecision::noop()
                }
            }),
            period_ns,
            0,
        );
    }

    /// Installs the tenant's own regression watchdog over **efficiency**
    /// (ops per joule ≈ ops-per-round / mean watts): any actuation
    /// followed by an efficiency collapse of more than `drop_frac` is
    /// rolled back through the journal — and the rollback record is the
    /// arbiter's quarantine signal.
    pub fn install_watchdog(&self, drop_frac: f64, period_ns: u64) {
        let ops = self.ops_done.clone();
        let power = self.power_w.clone();
        let mut last = 0f64;
        let lg = self.rt.lg();
        lg.policy_engine().register_periodic(
            RegressionWatchdog::new(
                lg.policy_engine().journal().clone(),
                move || {
                    let o = f64::from_bits(ops.load(Ordering::Relaxed));
                    let dops = (o - last).max(0.0);
                    last = o;
                    dops / f64::from_bits(power.load(Ordering::Relaxed)).max(1.0)
                },
                drop_frac,
            )
            .with_ignored_actor("arbiter"),
            period_ns,
            0,
        );
    }
}

/// A DAG-draining tenant: a [`crate::dag::DagSpec`] executed on its own
/// machine slice, critical-path-first, in lockstep with the
/// authoritative clock. The arbiter governs its `thread_cap` knob; the
/// tenant publishes its demand from live [`DagStats`] — wide frontier ⇒
/// claim threads, critical-path tail ⇒ release them.
pub struct DagTenant {
    rt: SimRuntime,
    spec: crate::dag::DagSpec,
    stats: Arc<DagStats>,
    /// Unmet-dependency count per node.
    remaining: Vec<u32>,
    /// Released (deps met) but not yet submitted nodes.
    ready: Vec<usize>,
    in_flight: usize,
    completed: usize,
    finish_ns: Option<u64>,
}

impl DagTenant {
    /// Builds the tenant on its own slice. The `dag.*` gauges are
    /// registered on the slice's introspection, so the tenant's own
    /// policies (and the governor's snapshot mirror) see the frontier.
    pub fn new(machine: MachineSpec, spec: crate::dag::DagSpec) -> Self {
        let rt = SimRuntime::new(machine);
        let stats = DagStats::new();
        stats.register_on(rt.lg().introspection());
        let n = spec.nodes();
        let remaining: Vec<u32> = (0..n)
            .map(|i| spec.pred_off[i + 1] - spec.pred_off[i])
            .collect();
        let mut ready = Vec::new();
        for (i, &r) in remaining.iter().enumerate() {
            if r == 0 {
                ready.push(i);
                stats.on_release(spec.height_ns[i]);
            }
        }
        Self {
            rt,
            spec,
            stats,
            remaining,
            ready,
            in_flight: 0,
            completed: 0,
            finish_ns: None,
        }
    }

    /// The tenant's looking-glass instance (carries the `thread_cap`
    /// knob the arbiter writes and the `dag.*` gauges).
    pub fn lg(&self) -> &Arc<LookingGlass> {
        self.rt.lg()
    }

    /// The live frontier statistics.
    pub fn stats(&self) -> &Arc<DagStats> {
        &self.stats
    }

    /// Nodes whose bodies have finished.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// True once every node has completed.
    pub fn done(&self) -> bool {
        self.completed == self.spec.nodes()
    }

    /// Virtual completion time of the last node, once [`Self::done`].
    pub fn makespan_ns(&self) -> Option<u64> {
        self.finish_ns
    }

    /// The DAG plane's native demand publisher, straight from
    /// [`DagStats::demand_profile`]: threads beyond the ready frontier
    /// have zero marginal utility.
    pub fn demand_probe(&self) -> DemandProbe {
        let stats = self.stats.clone();
        Arc::new(move |_snap, alloc| stats.demand_profile(alloc))
    }

    /// Advances the slice to the authoritative time `now_ns`,
    /// interleaving submission and successor release at event
    /// resolution: ready nodes are submitted critical-path-first while
    /// the governed `thread_cap` has room, and each completion releases
    /// its successors at the exact completion instant — so a thread
    /// granted mid-round is put to work mid-round, and the frontier
    /// gauges are honest at every event.
    pub fn step(&mut self, now_ns: u64) {
        loop {
            let cap = (self.rt.cap_knob().get().max(1) as usize).min(self.rt.spec().cores);
            while self.in_flight < cap && !self.ready.is_empty() {
                let pick = self
                    .ready
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &node)| self.spec.height_ns[node])
                    .map_or(0, |(idx, _)| idx);
                let node = self.ready.swap_remove(pick);
                self.rt.submit(
                    SimTask::new(
                        self.spec.config.pattern.name(),
                        self.spec.ops[node],
                        self.spec.bytes[node],
                    )
                    .with_tag(node as u64),
                );
                self.in_flight += 1;
            }
            let event = self.rt.run_until_event(now_ns);
            for (tag, t_ns) in self.rt.take_completions() {
                let node = tag as usize;
                self.completed += 1;
                self.in_flight -= 1;
                self.stats.on_complete(self.spec.height_ns[node]);
                for &s in self.spec.succs_of(node) {
                    self.remaining[s as usize] -= 1;
                    if self.remaining[s as usize] == 0 {
                        self.ready.push(s as usize);
                        self.stats.on_release(self.spec.height_ns[s as usize]);
                    }
                }
                if self.completed == self.spec.nodes() {
                    self.finish_ns = Some(t_ns);
                }
            }
            if !event {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_core::Clock;
    use lg_sim::MachineShares;

    fn slice(threads: usize) -> MachineSpec {
        MachineShares::new(MachineSpec::server32()).sub_spec(threads)
    }

    #[test]
    fn batch_tenant_keeps_up_with_feasible_load() {
        // 8 cores × 1k jobs/s-per-core capacity against 4k jobs/s.
        let mut t = BatchTenant::new(slice(8), 4_000.0, 100_000_000);
        for k in 1..=20u64 {
            t.step(k * 5_000_000);
        }
        // 100 ms × 4k/s = 400 jobs, minus at most a step of slack.
        assert!(t.jobs_done() >= 380, "done {}", t.jobs_done());
        assert!(t.backlog() < 30, "backlog {}", t.backlog());
        assert_eq!(t.lg().clock().now_ns(), 100_000_000);
    }

    #[test]
    fn storm_jobs_stall_and_build_backlog() {
        let mut t = BatchTenant::new(slice(8), 4_000.0, 100_000_000).with_storm(0, 100_000_000);
        for k in 1..=10u64 {
            t.step(k * 10_000_000);
        }
        // Bandwidth-bound: the slice's knee for 100 B/op sits far below
        // one core, so almost nothing completes.
        assert!(t.jobs_done() < 40, "done {}", t.jobs_done());
        assert!(t.backlog() > 300, "backlog {}", t.backlog());
    }

    #[test]
    fn power_gauge_tracks_mean_watts() {
        let mut t = BatchTenant::new(slice(16), 8_000.0, 1_000_000_000);
        t.step(50_000_000);
        let w = t.lg().snapshot().value_by_name("batch.power_w").unwrap();
        // Slice idle power is 12.5 W; 16 busy cores add up to 72 W.
        assert!(w > 12.0 && w < 90.0, "mean power {w}");
    }

    #[test]
    fn greedy_grows_cap_and_watchdog_rolls_it_back_in_storm() {
        let mut t =
            BatchTenant::new(slice(16), 8_000.0, 1_000_000_000).with_storm(0, 1_000_000_000);
        t.lg().knobs().set("thread_cap", 4);
        t.install_greedy(100, 10_000_000);
        t.install_watchdog(0.25, 10_000_000);
        let mut rolled_back = false;
        for k in 1..=40u64 {
            let now = k * 10_000_000;
            t.step(now);
            t.lg().policy_engine().step(now);
            rolled_back |= t
                .lg()
                .knobs()
                .journal()
                .records()
                .iter()
                .any(|r| r.rolled_back);
        }
        let grabbed = t
            .lg()
            .knobs()
            .journal()
            .records()
            .iter()
            .any(|r| r.policy == "greedy-scale-up");
        assert!(grabbed, "greedy policy never fired");
        assert!(rolled_back, "watchdog never rolled the grab back");
    }

    #[test]
    fn serve_tenant_exposes_arbitrable_knob_and_pressure() {
        let clock = Arc::new(VirtualClock::new());
        let t = ServeTenant::new(clock, 32, 7);
        assert_eq!(t.lg().knobs().value("serve.bulkhead_limit"), Some(32));
        assert!(t
            .lg()
            .introspection()
            .metric_id("serve.p99_window_ns")
            .is_some());
    }

    #[test]
    fn serve_probe_publishes_width_from_live_gauges() {
        let clock = Arc::new(VirtualClock::new());
        let t = ServeTenant::new(clock, 32, 7);
        let probe = t.demand_probe(25e6);
        let snap = t.lg().introspection().capture(0);
        let d = probe(&snap, 8);
        // Idle pipeline: nothing in flight, nothing queued, no shed —
        // the plane offers its threads back.
        assert_eq!(d.class, lg_core::DemandClass::Serve);
        assert_eq!(d.useful_width, Some(0.0));
        assert!(d.pressure < 1.0);
    }

    #[test]
    fn batch_probe_width_follows_backlog() {
        let mut t = BatchTenant::new(slice(8), 4_000.0, 100_000_000).with_storm(0, 100_000_000);
        let probe = t.demand_probe();
        for k in 1..=10u64 {
            t.step(k * 10_000_000);
        }
        // Storm backlog far exceeds the slice: width pins to the cores.
        let snap = t.lg().introspection().capture(100_000_000);
        let d = probe(&snap, 4);
        assert_eq!(d.useful_width, Some(8.0));
        assert_eq!(d.utility_up, 1.0);
    }

    fn sweep_dag(width: usize, depth: usize) -> crate::dag::DagSpec {
        let cfg = crate::dag::DagConfig {
            pattern: crate::dag::DagPattern::Sweep,
            width,
            depth,
            seed: 11,
            ..Default::default()
        };
        crate::dag::generate(&cfg, &crate::dag::CostModel::default())
    }

    #[test]
    fn dag_tenant_drains_in_lockstep_and_reports_makespan() {
        let mut t = DagTenant::new(slice(8), sweep_dag(8, 12));
        assert!(!t.done());
        let mut now = 0u64;
        while !t.done() {
            now += 1_000_000;
            t.step(now);
            assert!(t.lg().clock().now_ns() <= now);
        }
        let makespan = t.makespan_ns().unwrap();
        assert!(makespan > 0 && makespan <= now);
        assert_eq!(t.completed(), t.spec.nodes());
        // Frontier fully drained: the stats agree.
        assert_eq!(t.stats().ready_width(), 0.0);
        assert_eq!(t.stats().critical_path_ns(), 0.0);
    }

    #[test]
    fn dag_probe_claims_wide_then_releases_in_tail() {
        // Sweep contracts toward a single chain: wide at the top, width
        // 1 in the tail.
        let mut t = DagTenant::new(slice(8), sweep_dag(16, 16));
        let probe = t.demand_probe();
        let snap = t.lg().introspection().capture(0);
        let early = probe(&snap, 2);
        assert!(early.useful_width.unwrap() >= 8.0, "{early:?}");
        assert_eq!(early.utility_up, 1.0);
        // Drain almost everything: the tail is the critical chain.
        let mut now = 0u64;
        while !t.done() {
            now += 1_000_000;
            t.step(now);
        }
        let late = probe(&snap, 2);
        assert_eq!(late.useful_width, Some(0.0));
        assert_eq!(late.utility_up, 0.0);
    }
}
