//! Wall-clock serving on the real [`ThreadPool`]: the same admission
//! plane as the virtual-time [`super::engine::ServeEngine`], but gating
//! live tasks — the harness `examples/overload_shedding.rs` drives.
//!
//! There is no queue here: a request that cannot take a bulkhead permit
//! immediately is rejected (busy), which is the honest wall-clock analog
//! of "the queue would have eaten the deadline anyway".

use lg_core::{AdmissionGate, Brownout, Bulkhead, RequestClass};
use lg_metrics::Histogram;
use lg_runtime::ThreadPool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Accounting for a [`PoolServer`] run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PoolServeReport {
    /// Requests submitted.
    pub offered: u64,
    /// Requests shed by brownout or the rate gate.
    pub shed: u64,
    /// Requests rejected because the bulkhead was full.
    pub busy: u64,
    /// Requests that ran to completion.
    pub completed: u64,
    /// Completions inside their deadline budget.
    pub goodput: u64,
    /// Median completion latency, ns.
    pub p50_latency_ns: u64,
    /// 99th-percentile completion latency, ns.
    pub p99_latency_ns: u64,
}

#[derive(Default)]
struct Stats {
    offered: AtomicU64,
    shed: AtomicU64,
    busy: AtomicU64,
    completed: AtomicU64,
    goodput: AtomicU64,
    hist: Mutex<Histogram>,
}

/// Admission-controlled serving over a live thread pool.
pub struct PoolServer {
    pool: ThreadPool,
    bulkhead: Bulkhead,
    gate: AdmissionGate,
    brownout: Brownout,
    stats: Arc<Stats>,
    tickets: AtomicU64,
}

impl PoolServer {
    /// Wraps a pool with the three admission primitives. Register their
    /// knobs with the pool's [`lg_core::KnobRegistry`] to drive them
    /// live.
    pub fn new(
        pool: ThreadPool,
        bulkhead: Bulkhead,
        gate: AdmissionGate,
        brownout: Brownout,
    ) -> Self {
        Self {
            pool,
            bulkhead,
            gate,
            brownout,
            stats: Arc::new(Stats::default()),
            tickets: AtomicU64::new(0),
        }
    }

    /// The wrapped pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// The concurrency bulkhead.
    pub fn bulkhead(&self) -> &Bulkhead {
        &self.bulkhead
    }

    /// The rate gate.
    pub fn gate(&self) -> &AdmissionGate {
        &self.gate
    }

    /// The brownout.
    pub fn brownout(&self) -> &Brownout {
        &self.brownout
    }

    /// Submits one `class` request that spins for `service_ns` and must
    /// finish within `budget_ns`. Returns whether it was admitted
    /// (shed/busy rejections return `false` immediately, costing no pool
    /// work and no retry budget anywhere).
    pub fn submit(&self, class: RequestClass, service_ns: u64, budget_ns: u64) -> bool {
        self.stats.offered.fetch_add(1, Ordering::Relaxed);
        let ticket = self.tickets.fetch_add(1, Ordering::Relaxed);
        if self.brownout.should_shed(class, ticket) {
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let now = self.pool.lg().now_ns();
        if !self.gate.try_admit(now, class) {
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let Some(permit) = self.bulkhead.try_acquire() else {
            self.stats.busy.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        let lg = self.pool.lg().clone();
        let stats = self.stats.clone();
        let start = now;
        self.pool.spawn_named("serve.request", move || {
            let spin_until = lg.now_ns() + service_ns;
            while lg.now_ns() < spin_until {
                std::hint::spin_loop();
            }
            let done = lg.now_ns();
            let latency = done.saturating_sub(start);
            stats.completed.fetch_add(1, Ordering::Relaxed);
            if latency <= budget_ns {
                stats.goodput.fetch_add(1, Ordering::Relaxed);
            }
            stats.hist.lock().expect("not poisoned").record(latency);
            drop(permit);
        });
        true
    }

    /// Waits for every admitted request to finish and reports.
    pub fn finish(&self) -> PoolServeReport {
        self.pool.wait_idle();
        let hist = self.stats.hist.lock().expect("not poisoned");
        PoolServeReport {
            offered: self.stats.offered.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            busy: self.stats.busy.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            goodput: self.stats.goodput.load(Ordering::Relaxed),
            p50_latency_ns: hist.p50(),
            p99_latency_ns: hist.p99(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_core::{Knob, LookingGlass};
    use lg_runtime::PoolConfig;

    fn server(limit: i64) -> PoolServer {
        let lg = LookingGlass::builder().build();
        let pool = ThreadPool::new(lg, PoolConfig::with_workers(2));
        PoolServer::new(
            pool,
            Bulkhead::new("serve.bulkhead_limit", 1, 64, limit),
            AdmissionGate::new("serve.admit_rate", 1, 1_000_000, 1_000_000, 1e6, 0.0),
            Brownout::new("serve.shed_level"),
        )
    }

    #[test]
    fn admitted_work_completes_and_counts() {
        let s = server(8);
        let mut admitted = 0;
        for _ in 0..64 {
            if s.submit(RequestClass::Mandatory, 50_000, 1_000_000_000) {
                admitted += 1;
            }
            if s.bulkhead().in_flight() >= 8 {
                s.pool().wait_idle();
            }
        }
        let r = s.finish();
        assert_eq!(r.offered, 64);
        assert_eq!(r.completed, admitted);
        assert_eq!(r.goodput, admitted, "1 s budget is generous");
        assert!(r.p50_latency_ns >= 50_000);
    }

    #[test]
    fn bulkhead_full_rejects_as_busy() {
        let s = server(1);
        // Long task holds the only permit; the next submit bounces.
        assert!(s.submit(RequestClass::Mandatory, 20_000_000, 1_000_000_000));
        let mut bounced = false;
        for _ in 0..1_000 {
            if !s.submit(RequestClass::Mandatory, 1_000, 1_000_000_000) {
                bounced = true;
                break;
            }
            s.pool().wait_idle();
        }
        let r = s.finish();
        assert!(bounced, "a 1-wide bulkhead must bounce a burst");
        assert!(r.busy >= 1);
    }

    #[test]
    fn brownout_sheds_before_the_pool_sees_work() {
        let s = server(8);
        s.brownout().level_knob().set(4); // shed all optional
        for _ in 0..20 {
            s.submit(RequestClass::Optional, 10_000, 1_000_000_000);
        }
        for _ in 0..20 {
            s.submit(RequestClass::Mandatory, 10_000, 1_000_000_000);
        }
        let r = s.finish();
        assert_eq!(r.shed, 20, "every optional shed, no mandatory");
        assert!(r.completed >= 1);
    }
}
