//! The serving engine: a virtual-time discrete-event simulation of an
//! open-loop request stream flowing through the admission plane, the
//! reliable link, and a contended service stage.
//!
//! ## The pipeline
//!
//! ```text
//! arrivals ──► brownout ──► gate ──► queue ──► bulkhead ──► ReliableLink ──► server ──► done
//!              (shed)      (shed)   (waits)   (permits)    (faults,retry)   (knee)
//! ```
//!
//! * **Brownout** sheds a level-dependent fraction of requests, optional
//!   class first ([`lg_core::Brownout`]).
//! * **Gate** rate-limits admissions with a mandatory reserve
//!   ([`lg_core::AdmissionGate`]).
//! * **Queue** holds admitted requests waiting for a bulkhead permit;
//!   requests whose deadline passes in the queue are misses.
//! * **Bulkhead** caps requests in flight (link + server) — the knob the
//!   AIMD policy drives ([`lg_core::Bulkhead`]).
//! * **Link** is a [`ReliableLink`]: faults, retries, budgets, breakers.
//!   Sends carry the request deadline, so retransmission of doomed
//!   requests stops at expiry.
//! * **Server** models the contention knee: while the number of requests
//!   in service is at most `knee`, service takes the request's nominal
//!   demand; beyond the knee every service time inflates by
//!   `(in_service / knee)²` — the cache-thrash cliff that makes both
//!   too-little *and* too-much concurrency lose.
//!
//! The engine owns no policy: each control round it refreshes its gauges
//! and calls the caller's `on_round` hook, which typically advances a
//! virtual clock and steps a [`lg_core::PolicyEngine`] so AIMD, brownout,
//! and watchdog policies actuate the knobs mid-run.

use super::request::Request;
use lg_core::{AdmissionGate, Brownout, Bulkhead, BulkheadPermit, Introspection};
use lg_metrics::{CounterHandle, CounterRegistry, Histogram};
use lg_net::coalesce::{FlushReason, WireMessage};
use lg_net::parcel::Parcel;
use lg_net::reliable::ReliableLink;
use lg_net::ReliableReport;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Engine parameters (the service stage and the control cadence).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Service-stage contention knee: in-service counts above this
    /// inflate every service time quadratically.
    pub knee: usize,
    /// Fixed response-path latency added after service completes, ns.
    pub response_ns: u64,
    /// Control-round period (gauge refresh + `on_round` hook), ns.
    pub control_period_ns: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            knee: 8,
            response_ns: 20_000,
            control_period_ns: 10_000_000,
        }
    }
}

/// Live gauges the engine publishes for policies (shared via `Arc`).
#[derive(Debug, Default)]
pub struct ServeGauges {
    queue_depth: AtomicI64,
    in_flight: AtomicI64,
    in_service: AtomicI64,
    p99_window_ns: AtomicU64,
    service_p99_window_ns: AtomicU64,
}

impl ServeGauges {
    /// Admitted requests waiting for a bulkhead permit.
    pub fn queue_depth(&self) -> i64 {
        self.queue_depth.load(Ordering::Relaxed)
    }
    /// Requests holding a permit (in the link or in service).
    pub fn in_flight(&self) -> i64 {
        self.in_flight.load(Ordering::Relaxed)
    }
    /// Requests currently in service.
    pub fn in_service(&self) -> i64 {
        self.in_service.load(Ordering::Relaxed)
    }
    /// p99 end-to-end latency over the last control round, ns (holds the
    /// previous round's value when a round completes nothing).
    pub fn p99_window_ns(&self) -> u64 {
        self.p99_window_ns.load(Ordering::Relaxed)
    }
    /// p99 *service-stage* latency (delivery → response) over the last
    /// control round, ns. Unlike [`ServeGauges::p99_window_ns`] this
    /// excludes queue wait, so it isolates the contention knee: a
    /// concurrency governor can sense the knee here without being
    /// poisoned by the backlog its own clamping creates upstream.
    pub fn service_p99_window_ns(&self) -> u64 {
        self.service_p99_window_ns.load(Ordering::Relaxed)
    }
}

/// End-of-run accounting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeReport {
    /// Requests the arrival process offered.
    pub offered: u64,
    /// Requests shed by the brownout (before the gate).
    pub shed_brownout: u64,
    /// Requests rejected by the admission gate.
    pub shed_gate: u64,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Responses completed (any latency).
    pub completed: u64,
    /// Responses completed within their deadline — the goodput count.
    pub goodput: u64,
    /// Requests that missed their deadline (queued, in flight, or late).
    pub deadline_missed: u64,
    /// Median end-to-end latency of completed responses, ns.
    pub p50_latency_ns: u64,
    /// 99th-percentile end-to-end latency, ns.
    pub p99_latency_ns: u64,
    /// 99.9th-percentile end-to-end latency, ns.
    pub p999_latency_ns: u64,
    /// Time of the last completion, ns.
    pub makespan_ns: u64,
}

impl ServeReport {
    /// Fraction of offered requests served within deadline.
    pub fn goodput_frac(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.goodput as f64 / self.offered as f64
        }
    }

    /// Fraction of offered requests shed (brownout + gate).
    pub fn shed_frac(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            (self.shed_brownout + self.shed_gate) as f64 / self.offered as f64
        }
    }

    /// Fraction of offered requests that missed their deadline.
    pub fn miss_frac(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.deadline_missed as f64 / self.offered as f64
        }
    }

    /// Goodput in responses per second over the makespan.
    pub fn goodput_per_sec(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.goodput as f64 * 1e9 / self.makespan_ns as f64
        }
    }
}

enum Phase {
    Queued,
    Flight(BulkheadPermit),
    // The permit is never read, only held so the bulkhead slot stays
    // occupied through service and is released when the entry resolves.
    Service(#[allow(dead_code)] BulkheadPermit),
    Resolved,
}

struct Entry {
    req: Request,
    phase: Phase,
    service_entry_ns: u64,
}

#[derive(PartialEq, Eq)]
enum EvKind {
    /// Control round: refresh gauges, run the `on_round` hook, dispatch.
    Round,
    /// A request's deadline passed.
    Expire { id: u64 },
    /// A request finished service (response delivered).
    Done { id: u64 },
}

struct Ev {
    t_ns: u64,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.t_ns == other.t_ns && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (time, insertion seq) through BinaryHeap's max-heap.
        other
            .t_ns
            .cmp(&self.t_ns)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct Counters {
    arrivals: Option<CounterHandle>,
    admitted: Option<CounterHandle>,
    shed: Option<CounterHandle>,
    deadline_missed: Option<CounterHandle>,
    completed: Option<CounterHandle>,
    goodput: Option<CounterHandle>,
}

/// The serving DES. See the module docs for the pipeline.
pub struct ServeEngine {
    config: ServeConfig,
    link: ReliableLink,
    bulkhead: Bulkhead,
    gate: AdmissionGate,
    brownout: Brownout,
    gauges: Arc<ServeGauges>,
    counters: Counters,
    events: BinaryHeap<Ev>,
    next_seq: u64,
    queue: VecDeque<u64>,
    entries: HashMap<u64, Entry>,
    latency_hist: Histogram,
    window_hist: Histogram,
    service_window_hist: Histogram,
    report: ServeReport,
}

impl ServeEngine {
    /// Builds the engine over a (possibly fault-injected) link and the
    /// three admission primitives. Register the primitives' knobs and
    /// bind introspection *before* the run so policies can see and steer
    /// it.
    pub fn new(
        link: ReliableLink,
        config: ServeConfig,
        bulkhead: Bulkhead,
        gate: AdmissionGate,
        brownout: Brownout,
    ) -> Self {
        assert!(config.knee > 0, "knee must be positive");
        assert!(
            config.control_period_ns > 0,
            "control period must be positive"
        );
        Self {
            config,
            link,
            bulkhead,
            gate,
            brownout,
            gauges: Arc::new(ServeGauges::default()),
            counters: Counters::default(),
            events: BinaryHeap::new(),
            next_seq: 0,
            queue: VecDeque::new(),
            entries: HashMap::new(),
            latency_hist: Histogram::new(),
            window_hist: Histogram::new(),
            service_window_hist: Histogram::new(),
            report: ServeReport::default(),
        }
    }

    /// The engine's live gauges.
    pub fn gauges(&self) -> &Arc<ServeGauges> {
        &self.gauges
    }

    /// The wrapped link (e.g. to read its [`ReliableReport`]).
    pub fn link(&self) -> &ReliableLink {
        &self.link
    }

    /// The concurrency bulkhead (e.g. to reach its limit knob).
    pub fn bulkhead(&self) -> &Bulkhead {
        &self.bulkhead
    }

    /// The rate gate (e.g. to reach its rate knob).
    pub fn gate(&self) -> &AdmissionGate {
        &self.gate
    }

    /// The brownout (e.g. to reach its level knob).
    pub fn brownout(&self) -> &Brownout {
        &self.brownout
    }

    /// The link's reliability report.
    pub fn link_report(&self) -> ReliableReport {
        self.link.report()
    }

    /// Registers the serving gauges on the introspection facade:
    /// `serve.queue_depth`, `serve.in_flight`, `serve.in_service`,
    /// `serve.p99_window_ns`, `serve.service_p99_window_ns`. Also binds
    /// the link's breaker/budget gauges
    /// ([`ReliableLink::bind_introspection`]).
    pub fn bind_introspection(&self, intro: &Introspection) {
        let g = self.gauges.clone();
        intro.register_gauge("serve.queue_depth", move || g.queue_depth() as f64);
        let g = self.gauges.clone();
        intro.register_gauge("serve.in_flight", move || g.in_flight() as f64);
        let g = self.gauges.clone();
        intro.register_gauge("serve.in_service", move || g.in_service() as f64);
        let g = self.gauges.clone();
        intro.register_gauge("serve.p99_window_ns", move || g.p99_window_ns() as f64);
        let g = self.gauges.clone();
        intro.register_gauge("serve.service_p99_window_ns", move || {
            g.service_p99_window_ns() as f64
        });
        self.link.bind_introspection(intro);
    }

    /// Publishes the serving counters into `reg` under `serve.*` (the
    /// per-request ones striped) and the link's under `net.reliable.*`.
    pub fn bind_metrics(&mut self, reg: &CounterRegistry) {
        self.counters = Counters {
            arrivals: Some(reg.striped_counter("serve.arrivals")),
            admitted: Some(reg.striped_counter("serve.admitted")),
            shed: Some(reg.striped_counter("serve.shed")),
            deadline_missed: Some(reg.striped_counter("serve.deadline_missed")),
            completed: Some(reg.striped_counter("serve.completed")),
            goodput: Some(reg.striped_counter("serve.goodput")),
        };
        self.link.bind_metrics(reg);
    }

    fn schedule(&mut self, t_ns: u64, kind: EvKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Ev { t_ns, seq, kind });
    }

    fn bump(c: &Option<CounterHandle>) {
        if let Some(c) = c {
            c.inc();
        }
    }

    /// Runs the arrival stream to completion (all requests resolved),
    /// calling `on_round(t_ns)` each control round. Returns the serving
    /// report; [`ServeEngine::link_report`] has the wire-level view.
    pub fn run(&mut self, arrivals: &[Request], mut on_round: impl FnMut(u64)) -> ServeReport {
        debug_assert!(arrivals
            .windows(2)
            .all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        let horizon = arrivals.last().map_or(0, |r| r.arrival_ns);
        // Control rounds cover arrivals plus the longest possible drain
        // (every deadline is finite, so `horizon + max budget` bounds it).
        let max_budget = arrivals.iter().map(|r| r.budget_ns()).max().unwrap_or(0);
        let mut next_round = self.config.control_period_ns;
        let rounds_end = horizon + max_budget + self.config.control_period_ns;
        self.schedule(next_round, EvKind::Round);
        let mut ai = 0usize;
        loop {
            let next_arrival = arrivals.get(ai).map_or(u64::MAX, |r| r.arrival_ns);
            let next_event = self.events.peek().map_or(u64::MAX, |e| e.t_ns);
            if next_arrival == u64::MAX && next_event == u64::MAX {
                break;
            }
            if next_arrival <= next_event {
                let req = arrivals[ai].clone();
                ai += 1;
                self.arrive(req);
                self.pump_and_dispatch(next_arrival);
            } else {
                let ev = self.events.pop().expect("peeked");
                let t = ev.t_ns;
                match ev.kind {
                    EvKind::Round => {
                        self.refresh_gauges();
                        on_round(t);
                        next_round = t + self.config.control_period_ns;
                        if next_round <= rounds_end || !self.entries_done() {
                            self.schedule(next_round, EvKind::Round);
                        }
                    }
                    EvKind::Expire { id } => self.expire(id, t),
                    EvKind::Done { id } => self.complete(id, t),
                }
                self.pump_and_dispatch(t);
            }
        }
        let mut r = self.report.clone();
        r.p50_latency_ns = self.latency_hist.p50();
        r.p99_latency_ns = self.latency_hist.p99();
        r.p999_latency_ns = self.latency_hist.p999();
        self.report = r.clone();
        r
    }

    fn entries_done(&self) -> bool {
        self.entries
            .values()
            .all(|e| matches!(e.phase, Phase::Resolved))
    }

    fn arrive(&mut self, req: Request) {
        self.report.offered += 1;
        Self::bump(&self.counters.arrivals);
        // Brownout: shed optional before mandatory, deterministically.
        if self.brownout.should_shed(req.class, req.id) {
            self.report.shed_brownout += 1;
            Self::bump(&self.counters.shed);
            self.link.shed(&Self::wire(&req, req.arrival_ns));
            return;
        }
        // Rate gate: mandatory may spend into the reserve.
        if !self.gate.try_admit(req.arrival_ns, req.class) {
            self.report.shed_gate += 1;
            Self::bump(&self.counters.shed);
            self.link.shed(&Self::wire(&req, req.arrival_ns));
            return;
        }
        self.report.admitted += 1;
        Self::bump(&self.counters.admitted);
        let id = req.id;
        let deadline = req.deadline_ns;
        self.entries.insert(
            id,
            Entry {
                req,
                phase: Phase::Queued,
                service_entry_ns: 0,
            },
        );
        self.queue.push_back(id);
        self.schedule(deadline, EvKind::Expire { id });
    }

    fn wire(req: &Request, t_ns: u64) -> WireMessage {
        WireMessage {
            dest: req.dest,
            parcels: vec![Parcel::new(0, req.dest, 0, req.id, Vec::new())],
            reason: FlushReason::Window,
            t_ns,
        }
    }

    /// Starts as many queued requests as the bulkhead admits, then pumps
    /// the link and moves deliveries into service.
    fn pump_and_dispatch(&mut self, now: u64) {
        while let Some(&id) = self.queue.front() {
            let entry = self.entries.get(&id).expect("queued entry");
            if !matches!(entry.phase, Phase::Queued) {
                // Expired in the queue; drop the stale id.
                self.queue.pop_front();
                continue;
            }
            let Some(permit) = self.bulkhead.try_acquire() else {
                break;
            };
            self.queue.pop_front();
            let entry = self.entries.get_mut(&id).expect("queued entry");
            entry.phase = Phase::Flight(permit);
            let msg = Self::wire(&entry.req, now);
            let deadline = entry.req.deadline_ns;
            self.link.send_with_deadline(msg, deadline, |_| now);
        }
        let deliveries = self.link.pump(now);
        for d in deliveries {
            self.deliver(d.seq, now);
        }
    }

    /// A request reached its server: move it into service and schedule
    /// completion, inflating service time beyond the knee.
    fn deliver(&mut self, id: u64, now: u64) {
        let Some(entry) = self.entries.get_mut(&id) else {
            return; // late duplicate of an already-resolved request
        };
        let Phase::Flight(_) = entry.phase else {
            return; // expired (or already serving) — ignore the copy
        };
        let phase = std::mem::replace(&mut entry.phase, Phase::Resolved);
        let Phase::Flight(permit) = phase else {
            unreachable!()
        };
        entry.phase = Phase::Service(permit);
        entry.service_entry_ns = now;
        let in_service = self.gauges.in_service.fetch_add(1, Ordering::Relaxed) + 1;
        let knee = self.config.knee as f64;
        let factor = if in_service as f64 <= knee {
            1.0
        } else {
            let x = in_service as f64 / knee;
            x * x
        };
        let eff = (entry.req.service_ns as f64 * factor).ceil() as u64;
        let done_at = now + eff + self.config.response_ns;
        self.schedule(done_at, EvKind::Done { id });
    }

    /// Service finished: account the response and free the permit.
    fn complete(&mut self, id: u64, now: u64) {
        let entry = self.entries.get_mut(&id).expect("serving entry");
        if !matches!(entry.phase, Phase::Service(_)) {
            return;
        }
        entry.phase = Phase::Resolved; // drops the permit
        self.gauges.in_service.fetch_sub(1, Ordering::Relaxed);
        let latency = now - entry.req.arrival_ns;
        self.latency_hist.record(latency);
        self.window_hist.record(latency);
        self.service_window_hist
            .record(now - entry.service_entry_ns);
        self.report.completed += 1;
        Self::bump(&self.counters.completed);
        self.report.makespan_ns = self.report.makespan_ns.max(now);
        if now <= entry.req.deadline_ns {
            self.report.goodput += 1;
            Self::bump(&self.counters.goodput);
        } else {
            self.report.deadline_missed += 1;
            Self::bump(&self.counters.deadline_missed);
        }
    }

    /// A deadline passed: a queued or in-flight request is a miss; one
    /// already in service is left to finish (its completion is counted
    /// late there).
    fn expire(&mut self, id: u64, _now: u64) {
        let entry = self.entries.get_mut(&id).expect("expiring entry");
        match entry.phase {
            Phase::Queued | Phase::Flight(_) => {
                entry.phase = Phase::Resolved; // drops any permit
                self.report.deadline_missed += 1;
                Self::bump(&self.counters.deadline_missed);
            }
            Phase::Service(_) | Phase::Resolved => {}
        }
    }

    fn refresh_gauges(&mut self) {
        self.gauges
            .queue_depth
            .store(self.queue.len() as i64, Ordering::Relaxed);
        self.gauges
            .in_flight
            .store(self.bulkhead.in_flight(), Ordering::Relaxed);
        if self.window_hist.count() > 0 {
            self.gauges
                .p99_window_ns
                .store(self.window_hist.p99(), Ordering::Relaxed);
            self.window_hist = Histogram::new();
        }
        if self.service_window_hist.count() > 0 {
            self.gauges
                .service_p99_window_ns
                .store(self.service_window_hist.p99(), Ordering::Relaxed);
            self.service_window_hist = Histogram::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::arrivals::{ArrivalGen, ArrivalPattern};
    use super::*;
    use lg_core::{Knob, RequestClass};
    use lg_net::{FaultPlan, ReliableConfig, TransportCost};

    fn arrivals(rate: f64, horizon_ns: u64) -> Vec<Request> {
        ArrivalGen {
            pattern: ArrivalPattern::Poisson { rate_per_sec: rate },
            seed: 42,
            optional_frac: 0.3,
            service_mean_ns: 1_000_000,
            mandatory_budget_ns: 50_000_000,
            optional_budget_ns: 25_000_000,
            dests: 4,
        }
        .generate(horizon_ns)
    }

    fn engine(limit: i64, rate_cap: i64) -> ServeEngine {
        let link = ReliableLink::new(TransportCost::cluster(), ReliableConfig::default(), 7);
        ServeEngine::new(
            link,
            ServeConfig::default(),
            Bulkhead::new("serve.bulkhead_limit", 1, 256, limit),
            AdmissionGate::new("serve.admit_rate", 1, 1_000_000, rate_cap, 64.0, 8.0),
            Brownout::new("serve.shed_level"),
        )
    }

    #[test]
    fn underload_serves_everything_in_deadline() {
        // 2k req/s against ~8k req/s capacity: all goodput, no shedding.
        let reqs = arrivals(2_000.0, 500_000_000);
        let mut e = engine(16, 100_000);
        let r = e.run(&reqs, |_| {});
        assert_eq!(r.offered, reqs.len() as u64);
        assert_eq!(r.shed_brownout + r.shed_gate, 0);
        assert_eq!(r.goodput, r.offered, "underload must make every deadline");
        assert_eq!(r.deadline_missed, 0);
        assert!(r.p99_latency_ns < 50_000_000);
        assert!(r.p50_latency_ns > 0);
    }

    #[test]
    fn overload_without_admission_collapses() {
        // 20k req/s against ~8k capacity with a huge bulkhead: the knee
        // inflates service times and deadlines blow out.
        let reqs = arrivals(20_000.0, 500_000_000);
        let mut e = engine(256, 1_000_000);
        let r = e.run(&reqs, |_| {});
        assert!(
            r.goodput_frac() < 0.6,
            "unprotected overload should collapse, got {}",
            r.goodput_frac()
        );
        assert!(r.deadline_missed > 0);
    }

    #[test]
    fn brownout_sheds_and_protects_mandatory() {
        let reqs = arrivals(12_000.0, 500_000_000);
        let mut e = engine(8, 1_000_000);
        e.brownout.level_knob().set(4); // shed all optional
        let r = e.run(&reqs, |_| {});
        let optional = reqs
            .iter()
            .filter(|r| r.class == RequestClass::Optional)
            .count() as u64;
        assert_eq!(
            r.shed_brownout, optional,
            "level 4 sheds exactly the optional class"
        );
        assert!(r.goodput_frac() > 0.5, "mandatory should mostly make it");
    }

    #[test]
    fn deterministic_given_seeds() {
        let reqs = arrivals(9_000.0, 300_000_000);
        let run = || {
            let mut e = engine(8, 10_000);
            e.run(&reqs, |_| {})
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn counters_and_gauges_published() {
        let reqs = arrivals(9_000.0, 300_000_000);
        let reg = CounterRegistry::new();
        let mut e = engine(8, 6_000);
        e.bind_metrics(&reg);
        let gauges = e.gauges().clone();
        let mut saw_queue = false;
        let r = e.run(&reqs, |_| {
            saw_queue |= gauges.queue_depth() > 0;
        });
        assert_eq!(reg.counter("serve.arrivals").get(), r.offered);
        assert_eq!(
            reg.counter("serve.shed").get(),
            r.shed_brownout + r.shed_gate
        );
        assert_eq!(reg.counter("serve.goodput").get(), r.goodput);
        assert_eq!(
            reg.counter("serve.deadline_missed").get(),
            r.deadline_missed
        );
        assert!(saw_queue, "overload should have queued at some round");
        assert!(gauges.p99_window_ns() > 0);
        assert!(gauges.service_p99_window_ns() > 0);
        assert!(
            gauges.service_p99_window_ns() <= gauges.p99_window_ns(),
            "service latency is a component of end-to-end latency"
        );
        // Conservation: every offered request is accounted exactly once
        // (late completions are already inside `deadline_missed`).
        assert_eq!(
            r.offered,
            r.shed_brownout + r.shed_gate + r.goodput + r.deadline_missed,
            "conservation"
        );
    }

    #[test]
    fn faults_do_not_lose_accounting() {
        let reqs = arrivals(4_000.0, 400_000_000);
        let link = ReliableLink::with_faults(
            TransportCost::cluster(),
            FaultPlan::new(3).drop_prob(0.3),
            ReliableConfig::default(),
            7,
        );
        let mut e = ServeEngine::new(
            link,
            ServeConfig::default(),
            Bulkhead::new("serve.bulkhead_limit", 1, 256, 16),
            AdmissionGate::new("serve.admit_rate", 1, 1_000_000, 100_000, 64.0, 8.0),
            Brownout::new("serve.shed_level"),
        );
        let r = e.run(&reqs, |_| {});
        // Misses + goodput + shed cover everything; retries kept most
        // requests alive through 30% drop.
        let resolved = r.shed_brownout + r.shed_gate + r.goodput + r.deadline_missed;
        assert_eq!(resolved, r.offered);
        assert!(r.goodput_frac() > 0.8, "got {}", r.goodput_frac());
        assert!(e.link_report().retransmissions > 0);
    }
}
