//! Open-loop serving scenario: arrivals, admission, and saturation.
//!
//! The closed-loop kernels elsewhere in this crate self-throttle; this
//! module is the opposite regime. An [`arrivals::ArrivalGen`] emits
//! requests with deadlines regardless of whether the system keeps up,
//! and the [`engine::ServeEngine`] pushes them through the lg-core
//! admission plane (brownout → gate → bulkhead), an
//! [`lg_net::ReliableLink`] (faults, retries, breakers), and a service
//! stage with a contention knee. Everything interesting — queue depth,
//! in-flight, window p99, shed/miss counters — is published through the
//! introspection facade, so the same policies that tune the HPC kernels
//! (AIMD, brownout, watchdog) steer the serving stack.
//!
//! [`pool::PoolServer`] is the wall-clock sibling: the same admission
//! primitives gating real [`lg_runtime::ThreadPool`] tasks, for examples
//! and live demos.

pub mod arrivals;
pub mod engine;
pub mod pool;
pub mod request;

pub use arrivals::{ArrivalGen, ArrivalPattern};
pub use engine::{ServeConfig, ServeEngine, ServeGauges, ServeReport};
pub use pool::{PoolServeReport, PoolServer};
pub use request::Request;
