//! 1-D heat diffusion stencil — the canonical memory-bound workload.
//!
//! Explicit Jacobi update `u'[i] = u[i] + k·(u[i-1] - 2u[i] + u[i+1])`
//! with fixed boundaries, double-buffered. Each timestep is a
//! `parallel_for` over interior points with a tunable chunk size. Three
//! ops per point against three reads + one write makes it bandwidth-bound,
//! which is why its simulated twin saturates at the machine's knee.

use lg_runtime::ThreadPool;
use lg_sim::SimWorkload;

/// A 1-D heat diffusion problem.
pub struct Stencil1d {
    n: usize,
    k: f64,
    /// Double buffer; `front` indexes the current state.
    bufs: [Vec<f64>; 2],
    front: usize,
    steps_done: usize,
}

impl Stencil1d {
    /// Creates a rod of `n` points with diffusion constant `k`, hot at the
    /// left boundary (u[0] = 1) and cold elsewhere.
    ///
    /// # Panics
    /// Panics if `n < 3` or `k` is not in `(0, 0.5]` (stability bound).
    pub fn new(n: usize, k: f64) -> Self {
        assert!(n >= 3, "stencil needs at least 3 points");
        assert!(
            k > 0.0 && k <= 0.5,
            "diffusion constant must be in (0, 0.5] for stability"
        );
        let mut u = vec![0.0; n];
        u[0] = 1.0;
        Self {
            n,
            k,
            bufs: [u.clone(), u],
            front: 0,
            steps_done: 0,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the rod has no points (never true; see [`Stencil1d::new`]).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Timesteps completed.
    pub fn steps_done(&self) -> usize {
        self.steps_done
    }

    /// Current state.
    pub fn state(&self) -> &[f64] {
        &self.bufs[self.front]
    }

    /// Advances one timestep sequentially (reference implementation).
    pub fn step_seq(&mut self) {
        let n = self.n;
        let k = self.k;
        let (src_buf, dst_buf) = self.split_bufs();
        for i in 1..n - 1 {
            dst_buf[i] = src_buf[i] + k * (src_buf[i - 1] - 2.0 * src_buf[i] + src_buf[i + 1]);
        }
        dst_buf[0] = src_buf[0];
        dst_buf[n - 1] = src_buf[n - 1];
        self.front ^= 1;
        self.steps_done += 1;
    }

    fn split_bufs(&mut self) -> (&[f64], &mut [f64]) {
        let (a, b) = self.bufs.split_at_mut(1);
        if self.front == 0 {
            (&a[0], &mut b[0])
        } else {
            (&b[0], &mut a[0])
        }
    }

    /// Advances one timestep on the pool with the given chunk size.
    pub fn step_parallel(&mut self, pool: &ThreadPool, chunk: usize) {
        let n = self.n;
        let k = self.k;
        let (src_buf, dst_buf) = self.split_bufs();
        let src: &[f64] = src_buf;
        // Chunked writes into disjoint regions of dst. We hand out raw
        // chunks through an atomic cursor-free split: each task owns the
        // slice for its index range.
        let dst_ptr = SendPtr(dst_buf.as_mut_ptr());
        pool.parallel_for("stencil1d_chunk", 1..n - 1, chunk, move |i| {
            let v = src[i] + k * (src[i - 1] - 2.0 * src[i] + src[i + 1]);
            // SAFETY: each index i is visited exactly once across all
            // chunks (parallel_for covers disjoint ranges), so writes
            // never alias; boundaries (0, n-1) are not written here.
            unsafe { dst_ptr.write(i, v) };
        });
        // Copy boundaries.
        let (src_buf, dst_buf) = self.split_bufs();
        dst_buf[0] = src_buf[0];
        dst_buf[n - 1] = src_buf[n - 1];
        self.front ^= 1;
        self.steps_done += 1;
    }

    /// Runs `steps` timesteps in parallel.
    pub fn run(&mut self, pool: &ThreadPool, steps: usize, chunk: usize) {
        for _ in 0..steps {
            self.step_parallel(pool, chunk);
        }
    }

    /// Checksum (sum of state) — conserved up to boundary flux, used to
    /// compare implementations.
    pub fn checksum(&self) -> f64 {
        self.state().iter().sum()
    }

    /// The simulated twin: per step, `n` points × ~5 ops each, 32 bytes of
    /// traffic per point (3 reads + 1 write of f64), split into
    /// `tasks_per_step` tasks.
    pub fn sim_workload(n: usize, tasks_per_step: usize) -> SimWorkload {
        let ops = n as f64 * 5.0;
        SimWorkload {
            name: "stencil".into(),
            kind: lg_sim::WorkloadKind::MemoryBound,
            ops_per_step: ops,
            tasks_per_step,
            bytes_per_op: 32.0 / 5.0,
        }
    }
}

/// Send-able raw pointer wrapper for disjoint parallel writes.
///
/// Accessed only through [`SendPtr::write`], which copies the whole
/// wrapper into the closure (field-precise capture of the raw pointer
/// would defeat the `Send`/`Sync` impls).
#[derive(Clone, Copy)]
struct SendPtr(*mut f64);

impl SendPtr {
    /// # Safety
    /// `i` must be in bounds and written by exactly one task.
    unsafe fn write(self, i: usize, v: f64) {
        unsafe { *self.0.add(i) = v }
    }
}

// SAFETY: used only for writes to disjoint indices (see step_parallel).
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_core::LookingGlass;
    use lg_runtime::PoolConfig;

    fn pool(workers: usize) -> ThreadPool {
        ThreadPool::new(
            LookingGlass::builder().build(),
            PoolConfig::with_workers(workers),
        )
    }

    #[test]
    fn sequential_heat_flows_right() {
        let mut s = Stencil1d::new(64, 0.25);
        for _ in 0..100 {
            s.step_seq();
        }
        let u = s.state();
        assert_eq!(u[0], 1.0, "hot boundary fixed");
        assert!(u[1] > 0.1, "heat should have diffused");
        assert!(u[1] > u[10], "monotone decay from the hot end");
        assert!(u[10] > u[30]);
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let p = pool(3);
        let mut seq = Stencil1d::new(257, 0.2);
        let mut par = Stencil1d::new(257, 0.2);
        for _ in 0..50 {
            seq.step_seq();
            par.step_parallel(&p, 37);
        }
        for (i, (a, b)) in seq.state().iter().zip(par.state()).enumerate() {
            assert_eq!(a, b, "divergence at point {i}");
        }
    }

    #[test]
    fn chunk_size_does_not_change_results() {
        let p = pool(2);
        let mut a = Stencil1d::new(128, 0.25);
        let mut b = Stencil1d::new(128, 0.25);
        a.run(&p, 20, 1);
        b.run(&p, 20, 1000);
        assert_eq!(a.checksum(), b.checksum());
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn values_bounded_by_initial_extremes() {
        let p = pool(2);
        let mut s = Stencil1d::new(100, 0.5);
        s.run(&p, 200, 16);
        for &v in s.state() {
            assert!((0.0..=1.0).contains(&v), "out of bounds: {v}");
        }
    }

    #[test]
    fn steps_counted() {
        let p = pool(1);
        let mut s = Stencil1d::new(16, 0.25);
        s.run(&p, 7, 4);
        assert_eq!(s.steps_done(), 7);
    }

    #[test]
    #[should_panic(expected = "stability")]
    fn unstable_k_rejected() {
        let _ = Stencil1d::new(10, 0.9);
    }

    #[test]
    fn sim_workload_shape() {
        let w = Stencil1d::sim_workload(1_000_000, 32);
        let batch = w.step_batch();
        assert_eq!(batch.len(), 32);
        assert!(batch.iter().all(|t| t.bytes > 0.0));
    }

    #[test]
    fn tasks_profiled_per_step() {
        let p = pool(2);
        let mut s = Stencil1d::new(100, 0.25);
        s.run(&p, 3, 10);
        // 98 interior points / 10 per chunk = 10 chunks per step × 3 steps.
        let prof = p.lg().profiles().get("stencil1d_chunk").unwrap();
        assert_eq!(prof.count, 30);
    }

    #[test]
    fn conservation_away_from_boundaries() {
        // With both boundaries at 0 heat is conserved exactly... our left
        // boundary injects heat, so checksum must be non-decreasing.
        let p = pool(2);
        let mut s = Stencil1d::new(64, 0.25);
        let mut last = s.checksum();
        for _ in 0..20 {
            s.step_parallel(&p, 8);
            let now = s.checksum();
            assert!(now >= last - 1e-12, "checksum decreased: {last} -> {now}");
            last = now;
        }
    }
}
