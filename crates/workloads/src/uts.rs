//! Unbalanced tree search (UTS-style) — irregular task graphs.
//!
//! Each node's child count is drawn from a geometric-ish distribution
//! seeded by the node's id, so subtree sizes vary wildly and static
//! partitioning is hopeless — exactly the load shape work stealing exists
//! for. The tree is defined purely by a hash function (SplitMix64), so
//! its size is a deterministic function of the parameters and can be
//! verified against a sequential traversal.

use lg_runtime::ThreadPool;
use std::sync::atomic::{AtomicU64, Ordering};

/// Parameters of an unbalanced tree.
#[derive(Clone, Copy, Debug)]
pub struct UtsParams {
    /// Root seed.
    pub seed: u64,
    /// Mean branching factor scale (0..=8); larger ⇒ bigger trees.
    pub branch_scale: u32,
    /// Maximum depth (safety bound).
    pub max_depth: u32,
}

impl Default for UtsParams {
    fn default() -> Self {
        Self {
            seed: 42,
            branch_scale: 4,
            max_depth: 12,
        }
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Number of children of the node with id `id` at `depth`.
fn child_count(params: &UtsParams, id: u64, depth: u32) -> u32 {
    if depth >= params.max_depth {
        return 0;
    }
    if depth == 0 {
        // Standard UTS practice: the root has a fixed, generous branching
        // factor so the tree never degenerates to a single node.
        return (params.branch_scale * 2).max(4);
    }
    let h = splitmix(id ^ (params.seed.rotate_left(17)));
    // Geometric-ish: P(k children) halves with k; scaled by branch_scale.
    let r = (h % 16) as u32;
    match r {
        0..=7 => 0,
        8..=11 => params.branch_scale / 2,
        12..=14 => params.branch_scale,
        _ => params.branch_scale * 2,
    }
}

fn child_id(id: u64, k: u32) -> u64 {
    splitmix(id.wrapping_mul(31).wrapping_add(k as u64 + 1))
}

/// Sequential traversal; returns node count.
pub fn count_seq(params: &UtsParams) -> u64 {
    fn go(params: &UtsParams, id: u64, depth: u32) -> u64 {
        let mut total = 1;
        for k in 0..child_count(params, id, depth) {
            total += go(params, child_id(id, k), depth + 1);
        }
        total
    }
    go(params, params.seed, 0)
}

/// Parallel traversal: subtrees above `spawn_depth` become tasks;
/// below it recursion stays inline. Returns node count.
pub fn count_parallel(pool: &ThreadPool, params: &UtsParams, spawn_depth: u32) -> u64 {
    let total = AtomicU64::new(0);
    fn go_inline(params: &UtsParams, id: u64, depth: u32, acc: &AtomicU64) {
        acc.fetch_add(1, Ordering::Relaxed);
        for k in 0..child_count(params, id, depth) {
            go_inline(params, child_id(id, k), depth + 1, acc);
        }
    }
    pool.scope(|s| {
        // BFS expansion to spawn_depth, spawning a task per frontier node.
        let mut frontier = vec![(params.seed, 0u32)];
        let total = &total;
        while let Some((id, depth)) = frontier.pop() {
            if depth >= spawn_depth {
                let params = *params;
                s.spawn_named("uts_subtree", move || {
                    go_inline(&params, id, depth, total);
                });
                continue;
            }
            total.fetch_add(1, Ordering::Relaxed);
            for k in 0..child_count(params, id, depth) {
                frontier.push((child_id(id, k), depth + 1));
            }
        }
    });
    total.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_core::LookingGlass;
    use lg_runtime::PoolConfig;

    fn pool(workers: usize) -> ThreadPool {
        ThreadPool::new(
            LookingGlass::builder().build(),
            PoolConfig::with_workers(workers),
        )
    }

    #[test]
    fn tree_is_deterministic() {
        let p = UtsParams::default();
        assert_eq!(count_seq(&p), count_seq(&p));
    }

    #[test]
    fn tree_is_nontrivial() {
        let n = count_seq(&UtsParams::default());
        assert!(n > 100, "tree too small to be interesting: {n}");
    }

    #[test]
    fn different_seeds_different_trees() {
        let a = count_seq(&UtsParams {
            seed: 1,
            ..Default::default()
        });
        let b = count_seq(&UtsParams {
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn parallel_matches_sequential() {
        let p = pool(3);
        let params = UtsParams::default();
        let expect = count_seq(&params);
        for spawn_depth in [0, 1, 2, 4] {
            assert_eq!(
                count_parallel(&p, &params, spawn_depth),
                expect,
                "spawn_depth {spawn_depth}"
            );
        }
    }

    #[test]
    fn depth_bound_respected() {
        let params = UtsParams {
            max_depth: 0,
            ..Default::default()
        };
        assert_eq!(count_seq(&params), 1);
    }

    #[test]
    fn larger_branch_scale_grows_tree() {
        let small = count_seq(&UtsParams {
            branch_scale: 2,
            ..Default::default()
        });
        let big = count_seq(&UtsParams {
            branch_scale: 6,
            ..Default::default()
        });
        assert!(big > small, "big {big} vs small {small}");
    }

    #[test]
    fn subtree_tasks_profiled() {
        let p = pool(2);
        let params = UtsParams::default();
        count_parallel(&p, &params, 1);
        assert!(p.lg().profiles().get("uts_subtree").unwrap().count > 0);
    }
}
