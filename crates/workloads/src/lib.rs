//! # lg-workloads — benchmark workloads for the evaluation
//!
//! Each workload exists in (up to) two forms:
//!
//! 1. **Real** — runs on [`lg_runtime::ThreadPool`], computes actual
//!    numerics, and verifies them with checksums. Used by the overhead and
//!    granularity experiments, which are valid on any host.
//! 2. **Simulated** — a [`lg_sim::SimWorkload`] descriptor (tasks with op
//!    counts and bytes touched) executed on the simulated machine. Used by
//!    the concurrency/energy experiments, which need a many-core substrate.
//!
//! | Workload | Module | Character |
//! |---|---|---|
//! | DAG matrix | [`dag`] | Task Bench-style dependency patterns |
//! | 1-D heat stencil | [`stencil1d`] | memory-bound, iterative |
//! | 2-D heat stencil | [`stencil2d`] | memory-bound, blocked |
//! | transcendental kernel | [`compute`] | compute-bound |
//! | fib / divide-conquer | [`fib`] | task-graph recursion, tiny tasks |
//! | unbalanced tree search | [`uts`] | irregular task graph |
//! | phase alternator | [`phased`] | alternates memory/compute phases |
//! | parcel storm | [`parcel_storm`] | offered-load generator for lg-net |
//! | serving scenario | [`serve`] | open-loop arrivals, admission control, saturation |
//! | two-tenant colocation | [`tenants`] | serve + batch tenants under one arbiter |

#![warn(missing_docs)]

pub mod compute;
pub mod dag;
pub mod fib;
pub mod parcel_storm;
pub mod phased;
pub mod serve;
pub mod stencil1d;
pub mod stencil2d;
pub mod tenants;
pub mod uts;

pub use compute::ComputeKernel;
pub use dag::{CostModel, DagConfig, DagPattern, DagSched, DagSpec};
pub use parcel_storm::ParcelStorm;
pub use phased::PhasedWorkload;
pub use serve::{ArrivalGen, ArrivalPattern, ServeConfig, ServeEngine, ServeReport};
pub use stencil1d::Stencil1d;
pub use stencil2d::Stencil2d;
pub use tenants::{BatchTenant, DagTenant, ServeTenant};
