//! Parcel storm: an offered-load generator for the coalescing experiments.
//!
//! Generates parcel send events with a configurable mean rate and payload
//! size, in three regimes (steady, bursty, trickle). For virtual-time
//! experiments the storm yields deterministic `(t_ns, payload_size)`
//! schedules; for wall-clock runs it drives an
//! [`lg_net::Endpoint`] directly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Arrival pattern of the storm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StormShape {
    /// Exponential inter-arrivals at the mean rate.
    Steady,
    /// Alternating hot bursts (10× rate) and quiet gaps (rate / 10).
    Bursty,
    /// Sparse arrivals at rate / 20.
    Trickle,
}

/// Deterministic offered-load generator.
#[derive(Clone, Debug)]
pub struct ParcelStorm {
    /// Mean parcels per second (for [`StormShape::Steady`]).
    pub rate_per_sec: f64,
    /// Payload bytes per parcel.
    pub payload_bytes: usize,
    /// Arrival pattern.
    pub shape: StormShape,
    /// RNG seed.
    pub seed: u64,
}

impl ParcelStorm {
    /// Creates a steady storm.
    pub fn steady(rate_per_sec: f64, payload_bytes: usize, seed: u64) -> Self {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        Self {
            rate_per_sec,
            payload_bytes,
            shape: StormShape::Steady,
            seed,
        }
    }

    /// Creates a bursty storm.
    pub fn bursty(rate_per_sec: f64, payload_bytes: usize, seed: u64) -> Self {
        Self {
            shape: StormShape::Bursty,
            ..Self::steady(rate_per_sec, payload_bytes, seed)
        }
    }

    /// Creates a trickle storm.
    pub fn trickle(rate_per_sec: f64, payload_bytes: usize, seed: u64) -> Self {
        Self {
            shape: StormShape::Trickle,
            ..Self::steady(rate_per_sec, payload_bytes, seed)
        }
    }

    /// Generates the arrival schedule for `count` parcels: strictly
    /// monotone `t_ns` offsets from zero.
    pub fn schedule(&self, count: usize) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut t = 0.0f64;
        let mut out = Vec::with_capacity(count);
        // Burst bookkeeping: 1 ms hot, 10 ms cold.
        for i in 0..count {
            let rate = match self.shape {
                StormShape::Steady => self.rate_per_sec,
                StormShape::Trickle => self.rate_per_sec / 20.0,
                StormShape::Bursty => {
                    let phase_ns = (t as u64) % 11_000_000;
                    if phase_ns < 1_000_000 {
                        self.rate_per_sec * 10.0
                    } else {
                        self.rate_per_sec / 10.0
                    }
                }
            };
            // Exponential inter-arrival via inverse CDF.
            let u: f64 = rng.gen_range(1e-12..1.0);
            let dt_s = -u.ln() / rate;
            t += dt_s * 1e9;
            let t_ns = t.ceil() as u64 + i as u64; // strict monotonicity
            out.push(t_ns);
        }
        out
    }

    /// Mean achieved rate of a schedule (parcels/sec).
    pub fn achieved_rate(schedule: &[u64]) -> f64 {
        match (schedule.first(), schedule.last()) {
            (Some(&a), Some(&b)) if b > a => (schedule.len() as f64 - 1.0) * 1e9 / (b - a) as f64,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_monotone() {
        for shape in [
            ParcelStorm::steady(1e5, 64, 1),
            ParcelStorm::bursty(1e5, 64, 2),
            ParcelStorm::trickle(1e5, 64, 3),
        ] {
            let s = shape.schedule(2000);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "{:?}", shape.shape);
        }
    }

    #[test]
    fn steady_rate_approximately_achieved() {
        let storm = ParcelStorm::steady(1e6, 64, 7);
        let s = storm.schedule(20_000);
        let rate = ParcelStorm::achieved_rate(&s);
        assert!((rate / 1e6 - 1.0).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn trickle_is_much_slower() {
        let steady = ParcelStorm::steady(1e6, 64, 7).schedule(1000);
        let trickle = ParcelStorm::trickle(1e6, 64, 7).schedule(1000);
        assert!(trickle.last().unwrap() > &(steady.last().unwrap() * 10));
    }

    #[test]
    fn bursty_has_rate_variance() {
        let storm = ParcelStorm::bursty(1e6, 64, 9);
        let s = storm.schedule(20_000);
        // Split into windows; hot windows should be much denser than cold.
        let horizon = *s.last().unwrap();
        let nbins = 50usize;
        let mut bins = vec![0u32; nbins];
        for &t in &s {
            let b = ((t as u128 * nbins as u128) / (horizon as u128 + 1)) as usize;
            bins[b] += 1;
        }
        let max = *bins.iter().max().unwrap() as f64;
        let min = *bins.iter().filter(|&&b| b > 0).min().unwrap() as f64;
        assert!(max / min > 3.0, "burstiness too low: max {max} min {min}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ParcelStorm::steady(1e5, 64, 11).schedule(500);
        let b = ParcelStorm::steady(1e5, 64, 11).schedule(500);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_schedule_rate_zero() {
        assert_eq!(ParcelStorm::achieved_rate(&[]), 0.0);
        assert_eq!(ParcelStorm::achieved_rate(&[5]), 0.0);
    }
}
