//! Property tests for the serving pipeline's shed path: shed work is
//! *free*. A request the brownout or the gate rejects must never reach
//! the wire, never consume a retry token, and never dent the per-dest
//! retry budget — that is the whole point of shedding before sending.
//!
//! (These live here rather than in `lg-core` because the property spans
//! the admission plane *and* the reliable link, and `lg-core` cannot
//! dev-depend on `lg-net` without a cycle.)

use lg_core::knob::Knob;
use lg_core::{AdmissionGate, Brownout, Bulkhead};
use lg_net::reliable::ReliableLink;
use lg_net::{FaultPlan, ReliableConfig, TransportCost};
use lg_workloads::serve::{ArrivalGen, ArrivalPattern, ServeConfig, ServeEngine};
use proptest::prelude::*;

fn arrivals(seed: u64, rate: f64, optional_frac: f64) -> Vec<lg_workloads::serve::Request> {
    ArrivalGen {
        pattern: ArrivalPattern::Poisson { rate_per_sec: rate },
        seed,
        optional_frac,
        service_mean_ns: 1_000_000,
        mandatory_budget_ns: 50_000_000,
        optional_budget_ns: 25_000_000,
        dests: 4,
    }
    .generate(200_000_000)
}

fn engine(seed: u64, drop_prob: f64, gate_rate: i64) -> ServeEngine {
    let link = ReliableLink::with_faults(
        TransportCost::cluster(),
        FaultPlan::new(seed).drop_prob(drop_prob),
        ReliableConfig::default(),
        seed,
    );
    ServeEngine::new(
        link,
        ServeConfig::default(),
        Bulkhead::new("serve.bulkhead_limit", 1, 256, 16),
        AdmissionGate::new("serve.admit_rate", 1, 1_000_000, gate_rate, 64.0, 8.0),
        Brownout::new("serve.shed_level"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// At full brownout (level 8, everything shed) nothing is offered to
    /// the wire: zero sends, zero retransmissions, zero retry tokens
    /// consumed, zero budget deferrals — even with a lossy transport that
    /// would retry heavily if anything did get through.
    #[test]
    fn full_shed_consumes_zero_retry_budget(
        seed in 1u64..5_000,
        rate_x100 in 20u32..120,
        drop_pct in 0u32..40,
    ) {
        let reqs = arrivals(seed, rate_x100 as f64 * 100.0, 0.3);
        let mut e = engine(seed, drop_pct as f64 / 100.0, 1_000_000);
        e.brownout().level_knob().set(Brownout::MAX_LEVEL);
        let r = e.run(&reqs, |_| {});
        let link = e.link_report();
        prop_assert_eq!(r.shed_brownout, r.offered, "level 8 sheds everything");
        prop_assert_eq!(r.admitted, 0);
        prop_assert_eq!(link.shed_parcels, r.offered);
        prop_assert_eq!(link.offered_parcels, 0, "shed work never reaches the wire");
        prop_assert_eq!(link.retransmissions, 0);
        prop_assert_eq!(link.retries_consumed, 0, "shed work costs no retry tokens");
        prop_assert_eq!(link.budget_deferrals, 0);
    }

    /// At any shed level and gate rate, the link's accounting separates
    /// shed from sent exactly: `shed_parcels` equals the admission
    /// plane's shed count, only admitted requests are ever offered to
    /// the wire, and retry spend is attributable to admitted traffic
    /// alone (no admissions ⇒ no retries). Offered work is conserved
    /// across shed/goodput/missed.
    #[test]
    fn shed_and_sent_accounting_is_exact(
        seed in 1u64..5_000,
        level in 0i64..=8,
        gate_rate in 1i64..20_000,
        drop_pct in 0u32..30,
    ) {
        let reqs = arrivals(seed, 6_000.0, 0.3);
        let mut e = engine(seed, drop_pct as f64 / 100.0, gate_rate);
        e.brownout().level_knob().set(level);
        let r = e.run(&reqs, |_| {});
        let link = e.link_report();
        prop_assert_eq!(link.shed_parcels, r.shed_brownout + r.shed_gate);
        prop_assert!(
            link.offered_parcels <= r.admitted,
            "wire offers ({}) exceed admissions ({}); queue-expired requests never send",
            link.offered_parcels,
            r.admitted
        );
        if r.admitted == 0 {
            prop_assert_eq!(link.retries_consumed, 0);
            prop_assert_eq!(link.retransmissions, 0);
        }
        prop_assert_eq!(
            r.offered,
            r.shed_brownout + r.shed_gate + r.goodput + r.deadline_missed,
            "conservation: every offered request resolves exactly once"
        );
    }
}
