//! Property tests for the DAG workload matrix (PR 9 satellite).
//!
//! Three families of invariant, over randomly drawn patterns, shapes,
//! and seeds:
//!
//! 1. **Generator** — every generated DAG is acyclic with edges that
//!    only cross adjacent levels, level populations within the declared
//!    width/depth, a coherent CSR transpose, and strictly decreasing
//!    heights along edges ([`DagSpec::validate`] is the oracle).
//! 2. **Execution order** — running any spec on a real pool respects
//!    every dependency edge (predecessor's end stamp precedes consumer's
//!    begin stamp) and runs each node exactly once, for any seed,
//!    pattern, and worker count.
//! 3. **Exactly-once under faults** — with `FaultConfig` panic injection
//!    replacing random task bodies with panics, no node ever runs twice,
//!    surviving nodes still respect dependency order, the scope still
//!    joins (every node released), and the panic is rethrown.

use lg_core::LookingGlass;
use lg_runtime::{FaultConfig, PoolConfig, ThreadPool};
use lg_workloads::dag::{generate, run_on_pool_traced, CostModel, DagConfig, DagPattern, DagTrace};
use proptest::prelude::*;
use std::sync::atomic::Ordering;

fn pattern_from(idx: usize) -> DagPattern {
    DagPattern::ALL[idx % DagPattern::ALL.len()]
}

fn spec_for(pattern: DagPattern, width: usize, depth: usize, seed: u64) -> lg_workloads::DagSpec {
    generate(
        &DagConfig {
            pattern,
            width,
            depth,
            grain_ops: 1e4,
            grain_spread: 3.0,
            comm_bytes: 32.0,
            seed,
        },
        &CostModel::default(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Generator invariants hold for every pattern × shape × seed.
    #[test]
    fn generated_dags_are_valid(
        pat in 0usize..7,
        width in 1usize..24,
        depth in 1usize..24,
        seed in 0u64..10_000,
    ) {
        let spec = spec_for(pattern_from(pat), width, depth, seed);
        spec.validate();
        prop_assert!(spec.nodes() >= 1);
        prop_assert!(spec.cp_ns <= spec.work_ns);
    }

    /// Real execution respects every dependency and runs each node
    /// exactly once, for any pattern/seed/worker count.
    #[test]
    fn pool_execution_respects_dependencies(
        pat in 0usize..7,
        width in 1usize..12,
        depth in 1usize..10,
        seed in 0u64..1_000,
        workers in 1usize..5,
    ) {
        let spec = spec_for(pattern_from(pat), width, depth, seed);
        let pool = ThreadPool::new(
            LookingGlass::builder().build(),
            PoolConfig::with_workers(workers),
        );
        let trace = DagTrace::new(spec.nodes());
        let r = run_on_pool_traced(&pool, &spec, 1e-3, &trace);
        prop_assert_eq!(r.nodes, spec.nodes() as u64);
        prop_assert_eq!(r.checksum, lg_workloads::dag::expected_checksum(&spec, 1e-3));
        trace.assert_valid_execution(&spec);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Under injected panics: every node is *released* (the scope joins
    /// and rethrows rather than hanging), no node runs more than once,
    /// and nodes that did run still respect dependency order. Panic
    /// injection replaces a task's body, so a panicked node's trace slot
    /// stays zero — its successors run anyway, which is the documented
    /// release-on-drop contract.
    #[test]
    fn exactly_once_under_panic_injection(
        pat in 0usize..7,
        seed in 0u64..1_000,
        workers in 1usize..5,
    ) {
        let spec = spec_for(pattern_from(pat), 8, 8, seed);
        let pool = ThreadPool::new(
            LookingGlass::builder().build(),
            PoolConfig {
                workers,
                faults: Some(FaultConfig::seeded(seed).panic_prob(0.2)),
                ..PoolConfig::default()
            },
        );
        let trace = DagTrace::new(spec.nodes());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_on_pool_traced(&pool, &spec, 1e-3, &trace)
        }));
        let mut ran = 0u64;
        for node in 0..spec.nodes() {
            let runs = trace.runs[node].load(Ordering::Relaxed);
            prop_assert!(runs <= 1, "node {} ran {} times", node, runs);
            ran += runs;
            if runs == 1 {
                let b = trace.begin_seq[node].load(Ordering::Relaxed);
                for &p in spec.preds_of(node) {
                    let pe = trace.end_seq[p as usize].load(Ordering::Relaxed);
                    let p_ran = trace.runs[p as usize].load(Ordering::Relaxed) == 1;
                    prop_assert!(
                        !p_ran || pe < b,
                        "node {} began before predecessor {} ended", node, p
                    );
                }
            }
        }
        match outcome {
            Ok(r) => {
                // No fault fired this draw: a complete, checksum-exact run.
                prop_assert_eq!(ran, spec.nodes() as u64);
                prop_assert_eq!(
                    r.checksum,
                    lg_workloads::dag::expected_checksum(&spec, 1e-3)
                );
            }
            Err(_) => {
                // At least one node's body was replaced by a panic; the
                // scope still joined (we got here) after releasing every
                // successor.
                prop_assert!(ran < spec.nodes() as u64);
            }
        }
    }
}
