//! Property-based tests for the parcel layer.

use lg_net::coalesce::{FlushReason, WireMessage};
use lg_net::parcel::Parcel;
use lg_net::{Coalescer, FaultPlan, ReliableConfig, ReliableLink, SimLink, TransportCost};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn coalescer_conserves_parcels_across_destinations(
        window in 1usize..64,
        dests in proptest::collection::vec(0u32..5, 1..400),
    ) {
        let mut c = Coalescer::new(window, 512, 1_000);
        let mut out_per_dest: std::collections::HashMap<u32, Vec<u64>> = Default::default();
        for (seq, &dest) in dests.iter().enumerate() {
            let t = seq as u64 * 10;
            if let Some(m) = c.offer(Parcel::new(0, dest, 0, seq as u64, Vec::new()), t) {
                out_per_dest.entry(m.dest).or_default().extend(m.parcels.iter().map(|p| p.seq));
            }
            for m in c.poll(t) {
                out_per_dest.entry(m.dest).or_default().extend(m.parcels.iter().map(|p| p.seq));
            }
        }
        for m in c.flush_all(u64::MAX / 2) {
            out_per_dest.entry(m.dest).or_default().extend(m.parcels.iter().map(|p| p.seq));
        }
        // Per destination: exactly the offered seqs, in offer order.
        for (dest, seqs) in &out_per_dest {
            let expected: Vec<u64> = dests
                .iter()
                .enumerate()
                .filter(|(_, d)| *d == dest)
                .map(|(i, _)| i as u64)
                .collect();
            prop_assert_eq!(seqs, &expected, "dest {} mangled", dest);
        }
        let total: usize = out_per_dest.values().map(|v| v.len()).sum();
        prop_assert_eq!(total, dests.len());
    }

    #[test]
    fn deadline_bound_holds_under_regular_polling(
        window in 2usize..100,
        max_delay in 100u64..5_000,
        gaps in proptest::collection::vec(1u64..300, 1..300),
    ) {
        // Poll cadence strictly finer than max_delay ⇒ no parcel waits
        // longer than max_delay + one poll gap.
        let poll_every = (max_delay / 2).max(1);
        let mut c = Coalescer::new(window, 512, max_delay);
        let mut offered: std::collections::HashMap<u64, u64> = Default::default();
        let mut worst_wait = 0u64;
        let mut t = 0u64;
        let mut next_poll = poll_every;
        for (seq, gap) in gaps.iter().enumerate() {
            t += gap;
            while next_poll <= t {
                for m in c.poll(next_poll) {
                    for p in &m.parcels {
                        worst_wait = worst_wait.max(next_poll - offered[&p.seq]);
                    }
                }
                next_poll += poll_every;
            }
            offered.insert(seq as u64, t);
            if let Some(m) = c.offer(Parcel::new(0, 1, 0, seq as u64, Vec::new()), t) {
                for p in &m.parcels {
                    worst_wait = worst_wait.max(t - offered[&p.seq]);
                }
            }
        }
        prop_assert!(
            worst_wait <= max_delay + poll_every,
            "a parcel waited {} ns (bound {})",
            worst_wait,
            max_delay + poll_every
        );
    }

    #[test]
    fn link_arrivals_monotone_and_causal(
        msgs in proptest::collection::vec((0u64..1_000_000, 1usize..20, 0usize..256), 1..50),
    ) {
        let mut sorted = msgs.clone();
        sorted.sort_by_key(|m| m.0);
        let mut link = SimLink::new(TransportCost::cluster());
        let mut last_arrival = 0u64;
        let mut seq = 0u64;
        for (t, n, bytes) in sorted {
            let wire = lg_net::coalesce::WireMessage {
                dest: 1,
                parcels: (0..n)
                    .map(|_| {
                        seq += 1;
                        Parcel::new(0, 1, 0, seq, vec![0u8; bytes])
                    })
                    .collect(),
                reason: lg_net::coalesce::FlushReason::Window,
                t_ns: t,
            };
            let deliveries = link.transmit(&wire, |_| t);
            for d in &deliveries {
                prop_assert!(d.arrived_ns > t, "arrival before submission");
                prop_assert!(d.arrived_ns >= last_arrival, "link reordered messages");
            }
            last_arrival = deliveries.last().map(|d| d.arrived_ns).unwrap_or(last_arrival);
        }
        let r = link.report();
        prop_assert_eq!(r.parcels, seq);
    }

    #[test]
    fn reliable_delivery_exactly_once_under_any_fault_schedule(
        fault_seed in 0u64..10_000,
        link_seed in 0u64..10_000,
        drop_prob in 0.0f64..0.7,
        dup_prob in 0.0f64..0.9,
        jitter in 0u64..20_000,
        sizes in proptest::collection::vec(1u64..5, 1..50),
    ) {
        // For ANY seeded drop/duplicate/jitter schedule, a generous budget
        // guarantees every offered parcel surfaces exactly once.
        let plan = FaultPlan::new(fault_seed)
            .drop_prob(drop_prob)
            .duplicate_prob(dup_prob)
            .jitter_ns(jitter);
        let config = ReliableConfig {
            ack_timeout_ns: 50_000,
            backoff_base_ns: 10_000,
            backoff_max_ns: 500_000,
            retry_budget: 4_096,
            retry_refill_per_sec: 1e6,
            breaker_threshold: 1_024,
            ..ReliableConfig::default()
        };
        let mut rl =
            ReliableLink::with_faults(TransportCost::cluster(), plan, config, link_seed);
        let mut next_seq = 0u64;
        for (i, &k) in sizes.iter().enumerate() {
            let t = i as u64 * 30_000;
            let parcels = (0..k)
                .map(|_| {
                    let s = next_seq;
                    next_seq += 1;
                    Parcel::new(0, 1 + (i % 3) as u32, 0, s, vec![0u8; 16])
                })
                .collect();
            let msg = WireMessage {
                dest: 1 + (i % 3) as u32,
                parcels,
                reason: FlushReason::Window,
                t_ns: t,
            };
            rl.send(msg, |_| t);
        }
        let delivered = rl.drain();
        let mut seqs: Vec<u64> = delivered.iter().map(|d| d.seq).collect();
        let surfaced = seqs.len();
        seqs.sort_unstable();
        seqs.dedup();
        prop_assert_eq!(seqs.len(), surfaced, "a parcel surfaced more than once");
        prop_assert_eq!(seqs, (0..next_seq).collect::<Vec<u64>>());
        let r = rl.report();
        prop_assert_eq!(r.unique_parcels, next_seq);
        prop_assert_eq!(r.abandoned_parcels, 0);
    }

    #[test]
    fn retries_never_exceed_budget_with_zero_refill(
        budget in 0i64..16,
        fault_seed in 0u64..10_000,
        drop_prob in 0.0f64..0.9,
        count in 1usize..40,
    ) {
        // With zero refill the token bucket never regains tokens, so total
        // retries to a destination can never exceed its initial capacity —
        // and every parcel still resolves (delivered or abandoned).
        let plan = FaultPlan::new(fault_seed).drop_prob(drop_prob).outage(0, 200_000);
        let config = ReliableConfig {
            ack_timeout_ns: 50_000,
            backoff_base_ns: 10_000,
            backoff_max_ns: 500_000,
            retry_budget: budget,
            retry_refill_per_sec: 0.0,
            breaker_threshold: 1_024,
            max_attempts: 16,
            ..ReliableConfig::default()
        };
        let mut rl = ReliableLink::with_faults(
            TransportCost::cluster(),
            plan,
            config,
            fault_seed ^ 1,
        );
        for i in 0..count {
            let t = i as u64 * 20_000;
            let msg = WireMessage {
                dest: 1,
                parcels: vec![Parcel::new(0, 1, 0, i as u64, vec![0u8; 16])],
                reason: FlushReason::Window,
                t_ns: t,
            };
            rl.send(msg, |_| t);
        }
        let delivered = rl.drain();
        let r = rl.report();
        prop_assert!(
            r.retries_consumed <= budget as u64,
            "{} retries consumed with budget {}",
            r.retries_consumed,
            budget
        );
        prop_assert_eq!(r.retransmissions, r.retries_consumed);
        prop_assert_eq!(delivered.len() as u64 + r.abandoned_parcels, count as u64);
    }

    #[test]
    fn occupancy_additive_under_splitting(k in 1usize..64, bytes in 0usize..4096) {
        // Sending k parcels separately always costs at least as much link
        // occupancy as one coalesced message (α amortization, header cost).
        let c = TransportCost::cluster();
        let separate: u64 = (0..k).map(|_| c.occupancy_ns(bytes + Parcel::HEADER_BYTES)).sum();
        let together = c.occupancy_ns(k * (bytes + Parcel::HEADER_BYTES));
        prop_assert!(together <= separate, "{together} > {separate}");
    }
}
