//! Deterministic fault injection for the simulated link.
//!
//! A [`FaultPlan`] decides, per wire message and in virtual time, whether
//! the message is dropped, duplicated, or delayed beyond the cost model's
//! baseline. Decisions come from a seeded RNG plus a deterministic link
//! flap schedule, so a given `(seed, plan, offered load)` triple always
//! produces the same fault sequence — experiments and property tests can
//! replay storms bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What the fault layer decided for one wire-message transmission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Message arrives, possibly late and possibly twice.
    Deliver {
        /// Extra delay added to the arrival, beyond the cost model.
        extra_delay_ns: u64,
        /// Extra delay of the duplicate copy, if one was injected.
        duplicate_delay_ns: Option<u64>,
    },
    /// Message vanishes (random loss or link down).
    Drop,
}

/// A seeded, virtual-time-driven schedule of link faults.
///
/// Built with chained setters; all probabilities default to zero, so a
/// fresh plan injects nothing:
///
/// ```
/// use lg_net::fault::FaultPlan;
/// let plan = FaultPlan::new(42).drop_prob(0.1).duplicate_prob(0.05).jitter_ns(5_000);
/// ```
#[derive(Clone, Debug)]
pub struct FaultPlan {
    rng: StdRng,
    drop_prob: f64,
    dup_prob: f64,
    jitter_max_ns: u64,
    /// Periodic flap: link repeats `up_ns` up then `down_ns` down from t=0.
    flap: Option<(u64, u64)>,
    /// Explicit half-open `[start, end)` outage windows.
    outages: Vec<(u64, u64)>,
    drops: u64,
    flap_drops: u64,
    dups: u64,
}

impl FaultPlan {
    /// Creates a no-op plan with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            drop_prob: 0.0,
            dup_prob: 0.0,
            jitter_max_ns: 0,
            flap: None,
            outages: Vec::new(),
            drops: 0,
            flap_drops: 0,
            dups: 0,
        }
    }

    /// Probability that a wire message is silently dropped.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p < 1` (a plan that drops everything can never
    /// deliver, which would hang any retransmitting caller).
    pub fn drop_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        self.drop_prob = p;
        self
    }

    /// Probability that a delivered wire message arrives twice.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn duplicate_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplicate probability must be in [0, 1]"
        );
        self.dup_prob = p;
        self
    }

    /// Maximum extra arrival delay, sampled uniformly from `[0, max_ns]`.
    pub fn jitter_ns(mut self, max_ns: u64) -> Self {
        self.jitter_max_ns = max_ns;
        self
    }

    /// Periodic link flap: from t=0 the link repeats `up_ns` of service
    /// followed by `down_ns` of outage. Messages departing while down are
    /// dropped.
    ///
    /// # Panics
    /// Panics if `up_ns` is zero (the link would never carry anything).
    pub fn flap(mut self, up_ns: u64, down_ns: u64) -> Self {
        assert!(up_ns > 0, "flap up time must be positive");
        self.flap = Some((up_ns, down_ns));
        self
    }

    /// Adds an explicit `[start_ns, end_ns)` outage window.
    ///
    /// # Panics
    /// Panics unless `start_ns < end_ns`.
    pub fn outage(mut self, start_ns: u64, end_ns: u64) -> Self {
        assert!(start_ns < end_ns, "outage window must be non-empty");
        self.outages.push((start_ns, end_ns));
        self
    }

    /// Whether the link is down (flapped or in an outage window) at `t_ns`.
    pub fn link_down_at(&self, t_ns: u64) -> bool {
        if let Some((up, down)) = self.flap {
            if t_ns % (up + down) >= up {
                return true;
            }
        }
        self.outages.iter().any(|&(s, e)| (s..e).contains(&t_ns))
    }

    /// Decides the fate of a wire message departing at `depart_ns`.
    /// Advances the RNG, so the call sequence must itself be deterministic
    /// for replays to match (it is, under virtual time).
    pub fn decide(&mut self, depart_ns: u64) -> FaultAction {
        if self.link_down_at(depart_ns) {
            self.flap_drops += 1;
            return FaultAction::Drop;
        }
        if self.drop_prob > 0.0 && self.rng.gen_bool(self.drop_prob) {
            self.drops += 1;
            return FaultAction::Drop;
        }
        let extra_delay_ns = self.sample_jitter();
        let duplicate_delay_ns = if self.dup_prob > 0.0 && self.rng.gen_bool(self.dup_prob) {
            self.dups += 1;
            Some(self.sample_jitter())
        } else {
            None
        };
        FaultAction::Deliver {
            extra_delay_ns,
            duplicate_delay_ns,
        }
    }

    fn sample_jitter(&mut self) -> u64 {
        if self.jitter_max_ns == 0 {
            0
        } else {
            self.rng.gen_range(0..=self.jitter_max_ns)
        }
    }

    /// Randomly dropped messages so far (excludes flap drops).
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Messages dropped because the link was down.
    pub fn flap_drops(&self) -> u64 {
        self.flap_drops
    }

    /// Duplicated messages so far.
    pub fn duplicates(&self) -> u64 {
        self.dups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_transparent() {
        let mut p = FaultPlan::new(1);
        for t in (0..100).map(|i| i * 1_000) {
            assert_eq!(
                p.decide(t),
                FaultAction::Deliver {
                    extra_delay_ns: 0,
                    duplicate_delay_ns: None
                }
            );
        }
        assert_eq!(p.drops() + p.flap_drops() + p.duplicates(), 0);
    }

    #[test]
    fn same_seed_same_decisions() {
        let mk = || {
            FaultPlan::new(7)
                .drop_prob(0.3)
                .duplicate_prob(0.2)
                .jitter_ns(10_000)
        };
        let (mut a, mut b) = (mk(), mk());
        for t in 0..500u64 {
            assert_eq!(a.decide(t * 100), b.decide(t * 100));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultPlan::new(1).drop_prob(0.5);
        let mut b = FaultPlan::new(2).drop_prob(0.5);
        let agree = (0..200).filter(|&t| a.decide(t) == b.decide(t)).count();
        assert!(agree < 160, "seeds 1 and 2 agreed {agree}/200 times");
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let mut p = FaultPlan::new(3).drop_prob(0.25);
        let n = 10_000;
        let dropped = (0..n).filter(|&t| p.decide(t) == FaultAction::Drop).count();
        assert!(
            (2_000..3_000).contains(&dropped),
            "0.25 drop prob gave {dropped}/{n}"
        );
        assert_eq!(p.drops() as usize, dropped);
    }

    #[test]
    fn flap_schedule_is_periodic() {
        let p = FaultPlan::new(0).flap(1_000, 500);
        assert!(!p.link_down_at(0));
        assert!(!p.link_down_at(999));
        assert!(p.link_down_at(1_000));
        assert!(p.link_down_at(1_499));
        assert!(!p.link_down_at(1_500));
        assert!(p.link_down_at(1_500 + 1_000));
    }

    #[test]
    fn flap_drops_and_counts() {
        let mut p = FaultPlan::new(0).flap(1_000, 1_000);
        assert_eq!(p.decide(1_500), FaultAction::Drop);
        assert_eq!(p.flap_drops(), 1);
        assert_eq!(p.drops(), 0);
    }

    #[test]
    fn outage_windows_respected() {
        let mut p = FaultPlan::new(0).outage(2_000, 3_000);
        assert!(matches!(p.decide(1_999), FaultAction::Deliver { .. }));
        assert_eq!(p.decide(2_000), FaultAction::Drop);
        assert_eq!(p.decide(2_999), FaultAction::Drop);
        assert!(matches!(p.decide(3_000), FaultAction::Deliver { .. }));
    }

    #[test]
    fn jitter_bounded() {
        let mut p = FaultPlan::new(5).jitter_ns(700);
        for t in 0..2_000u64 {
            match p.decide(t) {
                FaultAction::Deliver { extra_delay_ns, .. } => assert!(extra_delay_ns <= 700),
                FaultAction::Drop => unreachable!("no drops configured"),
            }
        }
    }

    #[test]
    fn duplicates_counted() {
        let mut p = FaultPlan::new(9).duplicate_prob(0.5);
        let dup = (0..1_000)
            .filter(|&t| {
                matches!(
                    p.decide(t),
                    FaultAction::Deliver {
                        duplicate_delay_ns: Some(_),
                        ..
                    }
                )
            })
            .count();
        assert!((350..650).contains(&dup), "0.5 dup prob gave {dup}/1000");
        assert_eq!(p.duplicates() as usize, dup);
    }
}
