//! Parcels: active messages between localities.

/// Identifies a locality (node) in the parcel layer.
pub type LocalityId = u32;

/// An active message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Parcel {
    /// Source locality.
    pub src: LocalityId,
    /// Destination locality.
    pub dest: LocalityId,
    /// Application tag (dispatch key at the destination).
    pub tag: u32,
    /// Monotone per-source sequence number (assigned by the sender; used
    /// to verify ordering invariants).
    pub seq: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Parcel {
    /// Creates a parcel.
    pub fn new(src: LocalityId, dest: LocalityId, tag: u32, seq: u64, payload: Vec<u8>) -> Self {
        Self {
            src,
            dest,
            tag,
            seq,
            payload,
        }
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Total wire footprint including the fixed header.
    pub fn wire_bytes(&self) -> usize {
        Self::HEADER_BYTES + self.payload.len()
    }

    /// Fixed per-parcel header size on the wire.
    pub const HEADER_BYTES: usize = 32;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_footprint_includes_header() {
        let p = Parcel::new(0, 1, 7, 0, vec![0u8; 100]);
        assert_eq!(p.len(), 100);
        assert_eq!(p.wire_bytes(), 132);
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_payload() {
        let p = Parcel::new(0, 1, 7, 3, Vec::new());
        assert!(p.is_empty());
        assert_eq!(p.wire_bytes(), Parcel::HEADER_BYTES);
    }
}
