//! In-process locality endpoints over crossbeam channels.
//!
//! The real-runtime face of the parcel layer: two localities in one
//! process exchanging parcels through unbounded channels, with a coalescer
//! on the send side. Used by the parcel-storm workload and the wall-clock
//! examples; the virtual-time experiments use [`crate::link::SimLink`]
//! instead.

use crate::coalesce::{Coalescer, WireMessage};
use crate::parcel::{LocalityId, Parcel};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One locality's parcel endpoint.
pub struct Endpoint {
    id: LocalityId,
    tx: Sender<WireMessage>,
    rx: Receiver<WireMessage>,
    coalescer: Mutex<Coalescer>,
    next_seq: AtomicU64,
    sent: AtomicU64,
    received: AtomicU64,
}

/// A connected pair of endpoints.
pub struct EndpointPair {
    /// First endpoint (locality 0 by default).
    pub a: Arc<Endpoint>,
    /// Second endpoint.
    pub b: Arc<Endpoint>,
}

impl EndpointPair {
    /// Creates a connected pair with the given coalescer settings on each
    /// side.
    pub fn new(window: usize, window_max: usize, max_delay_ns: u64) -> Self {
        let (tx_ab, rx_ab) = unbounded();
        let (tx_ba, rx_ba) = unbounded();
        let a = Arc::new(Endpoint {
            id: 0,
            tx: tx_ab,
            rx: rx_ba,
            coalescer: Mutex::new(Coalescer::new(window, window_max, max_delay_ns)),
            next_seq: AtomicU64::new(0),
            sent: AtomicU64::new(0),
            received: AtomicU64::new(0),
        });
        let b = Arc::new(Endpoint {
            id: 1,
            tx: tx_ba,
            rx: rx_ab,
            coalescer: Mutex::new(Coalescer::new(window, window_max, max_delay_ns)),
            next_seq: AtomicU64::new(0),
            sent: AtomicU64::new(0),
            received: AtomicU64::new(0),
        });
        Self { a, b }
    }
}

impl Endpoint {
    /// This endpoint's locality id.
    pub fn id(&self) -> LocalityId {
        self.id
    }

    /// Sends a parcel (buffered through the coalescer). `now_ns` is the
    /// caller's clock reading, used for the delay bound.
    pub fn send(&self, dest: LocalityId, tag: u32, payload: Vec<u8>, now_ns: u64) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let parcel = Parcel::new(self.id, dest, tag, seq, payload);
        let flushed = self.coalescer.lock().offer(parcel, now_ns);
        if let Some(msg) = flushed {
            self.push_wire(msg);
        }
    }

    /// Flushes deadline-expired buffers; call periodically.
    pub fn poll(&self, now_ns: u64) {
        let msgs = self.coalescer.lock().poll(now_ns);
        for m in msgs {
            self.push_wire(m);
        }
    }

    /// Flushes everything buffered.
    pub fn flush(&self, now_ns: u64) {
        let msgs = self.coalescer.lock().flush_all(now_ns);
        for m in msgs {
            self.push_wire(m);
        }
    }

    fn push_wire(&self, msg: WireMessage) {
        self.sent
            .fetch_add(msg.parcels.len() as u64, Ordering::Relaxed);
        // The channel never closes while both endpoints are alive; if the
        // peer is gone, delivery is meaningless anyway.
        let _ = self.tx.send(msg);
    }

    /// Receives every currently available parcel, in wire order.
    pub fn drain(&self) -> Vec<Parcel> {
        let mut out = Vec::new();
        while let Ok(msg) = self.rx.try_recv() {
            out.extend(msg.parcels);
        }
        self.received.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Parcels sent (flushed to the wire) so far.
    pub fn sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    /// Parcels received so far.
    pub fn received(&self) -> u64 {
        self.received.load(Ordering::Relaxed)
    }

    /// Access to the coalescer (e.g. to register its window knob).
    pub fn with_coalescer<R>(&self, f: impl FnOnce(&mut Coalescer) -> R) -> R {
        f(&mut self.coalescer.lock())
    }
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("id", &self.id)
            .field("sent", &self.sent())
            .field("received", &self.received())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_window_flush() {
        let pair = EndpointPair::new(2, 64, 1_000_000);
        pair.a.send(1, 7, vec![1], 0);
        assert!(pair.b.drain().is_empty(), "buffered, not yet flushed");
        pair.a.send(1, 7, vec![2], 1);
        let got = pair.b.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].payload, vec![1]);
        assert_eq!(got[1].payload, vec![2]);
    }

    #[test]
    fn poll_flushes_stragglers() {
        let pair = EndpointPair::new(100, 100, 500);
        pair.a.send(1, 0, vec![9], 0);
        pair.a.poll(499);
        assert!(pair.b.drain().is_empty());
        pair.a.poll(500);
        assert_eq!(pair.b.drain().len(), 1);
    }

    #[test]
    fn explicit_flush() {
        let pair = EndpointPair::new(100, 100, u64::MAX / 2);
        pair.a.send(1, 0, vec![1], 0);
        pair.a.flush(1);
        assert_eq!(pair.b.drain().len(), 1);
    }

    #[test]
    fn bidirectional_independent() {
        let pair = EndpointPair::new(1, 64, 1_000);
        pair.a.send(1, 0, vec![b'a'], 0);
        pair.b.send(0, 0, vec![b'b'], 0);
        assert_eq!(pair.b.drain()[0].payload, vec![b'a']);
        assert_eq!(pair.a.drain()[0].payload, vec![b'b']);
    }

    #[test]
    fn sequences_monotone_per_sender() {
        let pair = EndpointPair::new(1, 64, 1_000);
        for i in 0..100u64 {
            pair.a.send(1, 0, vec![], i);
        }
        let got = pair.b.drain();
        assert_eq!(got.len(), 100);
        assert!(got.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn counters_track_flow() {
        let pair = EndpointPair::new(1, 64, 1_000);
        pair.a.send(1, 0, vec![], 0);
        pair.a.send(1, 0, vec![], 0);
        assert_eq!(pair.a.sent(), 2);
        pair.b.drain();
        assert_eq!(pair.b.received(), 2);
    }

    #[test]
    fn concurrent_senders_lose_nothing() {
        let pair = EndpointPair::new(4, 64, 1_000);
        let a = pair.a.clone();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let a = a.clone();
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        a.send(1, 0, vec![], i);
                    }
                })
            })
            .collect();
        threads.into_iter().for_each(|t| t.join().unwrap());
        a.flush(u64::MAX / 2);
        let got = pair.b.drain();
        assert_eq!(got.len(), 1000);
        // Every (implicitly per-endpoint) sequence number exactly once.
        let mut seqs: Vec<u64> = got.iter().map(|p| p.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 1000);
    }
}
