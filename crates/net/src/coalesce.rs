//! The parcel coalescer: buffer until `window` parcels or `max_delay`.
//!
//! Parcels are buffered per destination. A destination's buffer flushes
//! when it reaches `window` parcels (the knob) or when its oldest parcel
//! has waited `max_delay_ns` — whichever comes first. The flush produces a
//! wire message containing the buffered parcels in arrival order, so
//! per-(src,dst,tag) ordering is preserved end to end.
//!
//! The coalescer is deliberately clock-agnostic: callers pass timestamps
//! (virtual or wall), and discover deadline flushes by polling
//! [`Coalescer::poll`] — which also makes its behaviour exactly testable.

use crate::parcel::{LocalityId, Parcel};
use lg_core::knob::{AtomicKnob, KnobSpec};
use lg_core::Knob;
use std::collections::HashMap;
use std::sync::Arc;

/// Why a flush happened (observable; the adaptive policy uses the ratio of
/// size-triggered to deadline-triggered flushes as a load signal).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// The buffer reached the window size.
    Window,
    /// The oldest parcel hit the delay bound.
    Deadline,
    /// An explicit [`Coalescer::flush_all`] (shutdown, phase boundary).
    Explicit,
}

/// A flushed wire message: parcels for one destination.
#[derive(Clone, Debug, PartialEq)]
pub struct WireMessage {
    /// Destination locality.
    pub dest: LocalityId,
    /// Parcels in arrival order.
    pub parcels: Vec<Parcel>,
    /// Why the flush fired.
    pub reason: FlushReason,
    /// Time the flush fired.
    pub t_ns: u64,
}

impl WireMessage {
    /// Total wire bytes (sum of parcel wire footprints).
    pub fn wire_bytes(&self) -> usize {
        self.parcels.iter().map(|p| p.wire_bytes()).sum()
    }
}

struct DestBuffer {
    parcels: Vec<Parcel>,
    oldest_ns: u64,
}

/// Per-destination coalescing buffers with a shared window knob.
pub struct Coalescer {
    window: Arc<AtomicKnob>,
    max_delay_ns: u64,
    buffers: HashMap<LocalityId, DestBuffer>,
    window_flushes: u64,
    deadline_flushes: u64,
}

impl Coalescer {
    /// Creates a coalescer. `window_max` bounds the knob's range.
    ///
    /// # Panics
    /// Panics if `initial_window` or `window_max` is zero, or
    /// `max_delay_ns` is zero.
    pub fn new(initial_window: usize, window_max: usize, max_delay_ns: u64) -> Self {
        assert!(
            initial_window > 0 && window_max > 0,
            "window must be positive"
        );
        assert!(max_delay_ns > 0, "max delay must be positive");
        let window = AtomicKnob::new(
            KnobSpec::new("coalesce_window", 1, window_max as i64),
            initial_window as i64,
        );
        Self {
            window,
            max_delay_ns,
            buffers: HashMap::new(),
            window_flushes: 0,
            deadline_flushes: 0,
        }
    }

    /// The window knob (register it on a [`lg_core::KnobRegistry`] to let
    /// policies drive it).
    pub fn window_knob(&self) -> &Arc<AtomicKnob> {
        &self.window
    }

    /// Current window value.
    pub fn window(&self) -> usize {
        self.window.get().max(1) as usize
    }

    /// Configured delay bound.
    pub fn max_delay_ns(&self) -> u64 {
        self.max_delay_ns
    }

    /// Flushes triggered by window fill so far.
    pub fn window_flushes(&self) -> u64 {
        self.window_flushes
    }

    /// Flushes triggered by the deadline so far.
    pub fn deadline_flushes(&self) -> u64 {
        self.deadline_flushes
    }

    /// Parcels currently buffered across all destinations.
    pub fn buffered(&self) -> usize {
        self.buffers.values().map(|b| b.parcels.len()).sum()
    }

    /// Offers a parcel at time `t_ns`. Returns a wire message if this
    /// parcel filled its destination's window.
    pub fn offer(&mut self, parcel: Parcel, t_ns: u64) -> Option<WireMessage> {
        let dest = parcel.dest;
        let buf = self.buffers.entry(dest).or_insert_with(|| DestBuffer {
            parcels: Vec::new(),
            oldest_ns: t_ns,
        });
        if buf.parcels.is_empty() {
            buf.oldest_ns = t_ns;
        }
        buf.parcels.push(parcel);
        if buf.parcels.len() >= self.window() {
            self.window_flushes += 1;
            let parcels = std::mem::take(&mut self.buffers.get_mut(&dest).unwrap().parcels);
            Some(WireMessage {
                dest,
                parcels,
                reason: FlushReason::Window,
                t_ns,
            })
        } else {
            None
        }
    }

    /// Flushes every destination whose oldest parcel has waited past the
    /// delay bound, as of `now_ns`. Call periodically (or at virtual-time
    /// boundaries in simulation).
    pub fn poll(&mut self, now_ns: u64) -> Vec<WireMessage> {
        let mut out = Vec::new();
        let due: Vec<LocalityId> = self
            .buffers
            .iter()
            .filter(|(_, b)| {
                !b.parcels.is_empty() && now_ns.saturating_sub(b.oldest_ns) >= self.max_delay_ns
            })
            .map(|(&d, _)| d)
            .collect();
        for dest in due {
            let buf = self.buffers.get_mut(&dest).unwrap();
            let parcels = std::mem::take(&mut buf.parcels);
            self.deadline_flushes += 1;
            out.push(WireMessage {
                dest,
                parcels,
                reason: FlushReason::Deadline,
                t_ns: now_ns,
            });
        }
        // Deterministic output order.
        out.sort_by_key(|m| m.dest);
        out
    }

    /// The earliest deadline at which [`Coalescer::poll`] would flush
    /// something, if any parcels are buffered.
    pub fn next_deadline_ns(&self) -> Option<u64> {
        self.buffers
            .values()
            .filter(|b| !b.parcels.is_empty())
            .map(|b| b.oldest_ns + self.max_delay_ns)
            .min()
    }

    /// Unconditionally flushes everything (shutdown, phase boundary).
    pub fn flush_all(&mut self, now_ns: u64) -> Vec<WireMessage> {
        let mut out = Vec::new();
        for (&dest, buf) in self.buffers.iter_mut() {
            if !buf.parcels.is_empty() {
                let parcels = std::mem::take(&mut buf.parcels);
                out.push(WireMessage {
                    dest,
                    parcels,
                    reason: FlushReason::Explicit,
                    t_ns: now_ns,
                });
            }
        }
        out.sort_by_key(|m| m.dest);
        out
    }
}

impl std::fmt::Debug for Coalescer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coalescer")
            .field("window", &self.window())
            .field("buffered", &self.buffered())
            .field("window_flushes", &self.window_flushes)
            .field("deadline_flushes", &self.deadline_flushes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parcel(dest: LocalityId, seq: u64) -> Parcel {
        Parcel::new(0, dest, 1, seq, vec![0u8; 64])
    }

    #[test]
    fn window_fill_flushes() {
        let mut c = Coalescer::new(3, 64, 1_000_000);
        assert!(c.offer(parcel(1, 0), 10).is_none());
        assert!(c.offer(parcel(1, 1), 20).is_none());
        let msg = c.offer(parcel(1, 2), 30).unwrap();
        assert_eq!(msg.reason, FlushReason::Window);
        assert_eq!(msg.parcels.len(), 3);
        assert_eq!(msg.dest, 1);
        assert_eq!(c.buffered(), 0);
        assert_eq!(c.window_flushes(), 1);
    }

    #[test]
    fn destinations_buffer_independently() {
        let mut c = Coalescer::new(2, 64, 1_000_000);
        assert!(c.offer(parcel(1, 0), 0).is_none());
        assert!(c.offer(parcel(2, 0), 0).is_none());
        assert_eq!(c.buffered(), 2);
        let m = c.offer(parcel(2, 1), 5).unwrap();
        assert_eq!(m.dest, 2);
        assert_eq!(c.buffered(), 1, "dest 1 must keep its parcel");
    }

    #[test]
    fn deadline_flush_via_poll() {
        let mut c = Coalescer::new(100, 100, 1_000);
        c.offer(parcel(1, 0), 0);
        assert!(c.poll(999).is_empty(), "not due yet");
        let msgs = c.poll(1_000);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].reason, FlushReason::Deadline);
        assert_eq!(c.deadline_flushes(), 1);
    }

    #[test]
    fn deadline_measured_from_oldest() {
        let mut c = Coalescer::new(100, 100, 1_000);
        c.offer(parcel(1, 0), 0);
        c.offer(parcel(1, 1), 900);
        // Oldest is t=0, so due at t=1000 even though the newest is fresh.
        let msgs = c.poll(1_000);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].parcels.len(), 2);
    }

    #[test]
    fn next_deadline_reported() {
        let mut c = Coalescer::new(100, 100, 500);
        assert_eq!(c.next_deadline_ns(), None);
        c.offer(parcel(3, 0), 100);
        assert_eq!(c.next_deadline_ns(), Some(600));
        c.offer(parcel(4, 0), 50);
        assert_eq!(c.next_deadline_ns(), Some(550));
    }

    #[test]
    fn ordering_preserved_within_message() {
        let mut c = Coalescer::new(4, 64, 1_000_000);
        for seq in 0..3 {
            c.offer(parcel(1, seq), seq);
        }
        let msg = c.offer(parcel(1, 3), 3).unwrap();
        let seqs: Vec<u64> = msg.parcels.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn window_knob_changes_take_effect() {
        let mut c = Coalescer::new(8, 64, 1_000_000);
        c.offer(parcel(1, 0), 0);
        c.window_knob().set(2);
        let msg = c.offer(parcel(1, 1), 1).unwrap();
        assert_eq!(msg.parcels.len(), 2);
    }

    #[test]
    fn window_one_flushes_immediately() {
        let mut c = Coalescer::new(1, 64, 1_000_000);
        let m = c.offer(parcel(1, 0), 0).unwrap();
        assert_eq!(m.parcels.len(), 1);
    }

    #[test]
    fn flush_all_drains_everything() {
        let mut c = Coalescer::new(100, 100, 1_000_000);
        c.offer(parcel(1, 0), 0);
        c.offer(parcel(2, 0), 0);
        c.offer(parcel(2, 1), 0);
        let msgs = c.flush_all(99);
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].dest, 1);
        assert_eq!(msgs[1].dest, 2);
        assert!(msgs.iter().all(|m| m.reason == FlushReason::Explicit));
        assert_eq!(c.buffered(), 0);
    }

    #[test]
    fn no_parcel_lost_or_duplicated() {
        let mut c = Coalescer::new(5, 64, 700);
        let mut delivered: Vec<u64> = Vec::new();
        let mut t = 0u64;
        for seq in 0..1000u64 {
            t += 100;
            if let Some(m) = c.offer(parcel(1, seq), t) {
                delivered.extend(m.parcels.iter().map(|p| p.seq));
            }
            for m in c.poll(t) {
                delivered.extend(m.parcels.iter().map(|p| p.seq));
            }
        }
        for m in c.flush_all(t + 1) {
            delivered.extend(m.parcels.iter().map(|p| p.seq));
        }
        assert_eq!(delivered.len(), 1000);
        // In-order per (src,dst,tag): all one stream here.
        assert!(
            delivered.windows(2).all(|w| w[0] < w[1]),
            "reordering detected"
        );
    }

    #[test]
    fn no_parcel_delayed_past_bound_when_polled() {
        // Property: if poll is called at least once within every delay
        // window, no parcel waits more than 2×max_delay.
        let mut c = Coalescer::new(1000, 1000, 500);
        let mut max_wait = 0u64;
        let mut t = 0u64;
        let mut offered: std::collections::HashMap<u64, u64> = Default::default();
        for seq in 0..200u64 {
            t += 133;
            c.offer(parcel(1, seq), t);
            offered.insert(seq, t);
            for m in c.poll(t) {
                for p in &m.parcels {
                    max_wait = max_wait.max(t - offered[&p.seq]);
                }
            }
        }
        assert!(max_wait <= 1_000, "a parcel waited {max_wait} ns");
    }
}
