//! Simulated serialized link over virtual time.
//!
//! Wire messages queue for a single serialized channel (think NIC TX):
//! message `m` departs at `max(submit_time, link_free_time)`, occupies the
//! link for `occupancy(bytes)`, and arrives `latency` after departure. The
//! link tracks per-parcel end-to-end latency (from the parcel's *offer*
//! time, so coalescing queueing delay is included) and achieved rates —
//! the quantities Table 2 reports.

use crate::coalesce::WireMessage;
use crate::cost::TransportCost;
use crate::fault::{FaultAction, FaultPlan};
use lg_metrics::Histogram;

/// A delivered parcel with timing.
#[derive(Clone, Debug, PartialEq)]
pub struct Delivery {
    /// Destination locality.
    pub dest: u32,
    /// Parcel sequence number.
    pub seq: u64,
    /// Arrival time.
    pub arrived_ns: u64,
}

/// Aggregate link statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkReport {
    /// Wire messages sent.
    pub wire_messages: u64,
    /// Parcels delivered.
    pub parcels: u64,
    /// Total payload+header bytes moved.
    pub bytes: u64,
    /// Busy time of the link (occupancy sum), nanoseconds.
    pub busy_ns: u64,
    /// Time the last delivery arrives.
    pub last_arrival_ns: u64,
    /// Mean parcels per wire message.
    pub mean_coalesce: f64,
    /// Mean end-to-end parcel latency (from offer to arrival), ns.
    pub mean_latency_ns: f64,
    /// 99th-percentile parcel latency, ns.
    pub p99_latency_ns: u64,
    /// Wire messages lost to the fault plan (random drop or link down).
    pub dropped_wire_messages: u64,
    /// Parcels lost with those messages.
    pub dropped_parcels: u64,
    /// Extra parcel copies injected by duplication faults.
    pub duplicate_parcels: u64,
}

impl LinkReport {
    /// Achieved parcel throughput over the makespan (parcels/second).
    pub fn parcels_per_sec(&self) -> f64 {
        if self.last_arrival_ns == 0 {
            0.0
        } else {
            self.parcels as f64 * 1e9 / self.last_arrival_ns as f64
        }
    }
}

/// The simulated link (see module docs).
pub struct SimLink {
    cost: TransportCost,
    faults: Option<FaultPlan>,
    free_at_ns: u64,
    wire_messages: u64,
    parcels: u64,
    bytes: u64,
    busy_ns: u64,
    last_arrival_ns: u64,
    latency_hist: Histogram,
    latency_sum: f64,
    dropped_wire_messages: u64,
    dropped_parcels: u64,
    duplicate_parcels: u64,
}

impl SimLink {
    /// Creates an idle link with the given cost model.
    pub fn new(cost: TransportCost) -> Self {
        Self {
            cost,
            faults: None,
            free_at_ns: 0,
            wire_messages: 0,
            parcels: 0,
            bytes: 0,
            busy_ns: 0,
            last_arrival_ns: 0,
            latency_hist: Histogram::new(),
            latency_sum: 0.0,
            dropped_wire_messages: 0,
            dropped_parcels: 0,
            duplicate_parcels: 0,
        }
    }

    /// Creates a link that consults `plan` on every transmission.
    pub fn with_faults(cost: TransportCost, plan: FaultPlan) -> Self {
        let mut link = Self::new(cost);
        link.faults = Some(plan);
        link
    }

    /// Installs (or replaces) the fault plan on a live link.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The cost model.
    pub fn cost(&self) -> &TransportCost {
        &self.cost
    }

    /// Time at which the link next becomes free.
    pub fn free_at_ns(&self) -> u64 {
        self.free_at_ns
    }

    /// Transmits a wire message submitted at `msg.t_ns`; `offer_times`
    /// maps each contained parcel's `seq` to the time it was originally
    /// offered to the coalescer (for end-to-end latency accounting).
    /// Returns the per-parcel deliveries (all arrive together).
    pub fn transmit(
        &mut self,
        msg: &WireMessage,
        offer_time_of: impl Fn(u64) -> u64,
    ) -> Vec<Delivery> {
        let bytes = msg.wire_bytes();
        let depart = msg.t_ns.max(self.free_at_ns);
        let occupancy = self.cost.occupancy_ns(bytes);
        self.free_at_ns = depart + occupancy;
        self.busy_ns += occupancy;
        self.wire_messages += 1;
        self.bytes += bytes as u64;
        // The fault plan sees the message after it occupied the TX side:
        // the sender pays the wire cost whether or not the message lands.
        let action = match self.faults.as_mut() {
            Some(plan) => plan.decide(depart),
            None => FaultAction::Deliver {
                extra_delay_ns: 0,
                duplicate_delay_ns: None,
            },
        };
        let (extra_delay_ns, duplicate_delay_ns) = match action {
            FaultAction::Drop => {
                self.dropped_wire_messages += 1;
                self.dropped_parcels += msg.parcels.len() as u64;
                return Vec::new();
            }
            FaultAction::Deliver {
                extra_delay_ns,
                duplicate_delay_ns,
            } => (extra_delay_ns, duplicate_delay_ns),
        };
        let arrive = self.free_at_ns + self.cost.latency_ns + extra_delay_ns;
        self.last_arrival_ns = self.last_arrival_ns.max(arrive);
        let mut out: Vec<Delivery> = msg
            .parcels
            .iter()
            .map(|p| {
                self.parcels += 1;
                let offered = offer_time_of(p.seq);
                let lat = arrive.saturating_sub(offered);
                self.latency_hist.record(lat);
                self.latency_sum += lat as f64;
                Delivery {
                    dest: p.dest,
                    seq: p.seq,
                    arrived_ns: arrive,
                }
            })
            .collect();
        if let Some(dup_delay) = duplicate_delay_ns {
            let dup_arrive = self.free_at_ns + self.cost.latency_ns + dup_delay;
            self.last_arrival_ns = self.last_arrival_ns.max(dup_arrive);
            self.duplicate_parcels += msg.parcels.len() as u64;
            out.extend(msg.parcels.iter().map(|p| Delivery {
                dest: p.dest,
                seq: p.seq,
                arrived_ns: dup_arrive,
            }));
        }
        out
    }

    /// Aggregate statistics so far.
    pub fn report(&self) -> LinkReport {
        LinkReport {
            wire_messages: self.wire_messages,
            parcels: self.parcels,
            bytes: self.bytes,
            busy_ns: self.busy_ns,
            last_arrival_ns: self.last_arrival_ns,
            mean_coalesce: if self.wire_messages == 0 {
                0.0
            } else {
                self.parcels as f64 / self.wire_messages as f64
            },
            mean_latency_ns: if self.parcels == 0 {
                0.0
            } else {
                self.latency_sum / self.parcels as f64
            },
            p99_latency_ns: self.latency_hist.p99(),
            dropped_wire_messages: self.dropped_wire_messages,
            dropped_parcels: self.dropped_parcels,
            duplicate_parcels: self.duplicate_parcels,
        }
    }
}

impl std::fmt::Debug for SimLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimLink")
            .field("wire_messages", &self.wire_messages)
            .field("parcels", &self.parcels)
            .field("free_at_ns", &self.free_at_ns)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::FlushReason;
    use crate::fault::FaultPlan;
    use crate::parcel::Parcel;

    fn msg(t_ns: u64, nparcels: usize, bytes_each: usize) -> WireMessage {
        WireMessage {
            dest: 1,
            parcels: (0..nparcels as u64)
                .map(|seq| Parcel::new(0, 1, 0, seq, vec![0; bytes_each]))
                .collect(),
            reason: FlushReason::Window,
            t_ns,
        }
    }

    #[test]
    fn single_message_timing() {
        let mut link = SimLink::new(TransportCost::new(1_000, 1.0, 500));
        let m = msg(0, 1, 68); // wire = 32 + 68 = 100 bytes
        let deliveries = link.transmit(&m, |_| 0);
        assert_eq!(deliveries.len(), 1);
        // occupancy = 1000 + 100 = 1100; arrive at 1100 + 500 = 1600.
        assert_eq!(deliveries[0].arrived_ns, 1_600);
        assert_eq!(link.free_at_ns(), 1_100);
    }

    #[test]
    fn serialization_queues_messages() {
        let mut link = SimLink::new(TransportCost::new(1_000, 0.0, 0));
        let d1 = link.transmit(&msg(0, 1, 0), |_| 0);
        let d2 = link.transmit(&msg(0, 1, 0), |_| 0);
        assert_eq!(d1[0].arrived_ns, 1_000); // β = 0: occupancy is α only
        assert_eq!(d2[0].arrived_ns, 2_000); // queued behind the first
    }

    #[test]
    fn idle_gap_does_not_queue() {
        let mut link = SimLink::new(TransportCost::new(100, 0.0, 0));
        link.transmit(&msg(0, 1, 0), |_| 0);
        let d = link.transmit(&msg(10_000, 1, 0), |_| 0);
        assert_eq!(d[0].arrived_ns, 10_100);
    }

    #[test]
    fn coalesced_message_beats_individual_sends() {
        let cost = TransportCost::cluster();
        let mut single = SimLink::new(cost);
        for i in 0..64u64 {
            single.transmit(&msg(0, 1, 64), |_| i); // 64 separate messages
        }
        let mut coal = SimLink::new(cost);
        coal.transmit(&msg(0, 64, 64), |_| 0); // one 64-parcel message
        let rs = single.report();
        let rc = coal.report();
        assert_eq!(rs.parcels, rc.parcels);
        assert!(
            rc.last_arrival_ns * 5 < rs.last_arrival_ns,
            "coalescing should be ≥5× faster here: {} vs {}",
            rc.last_arrival_ns,
            rs.last_arrival_ns
        );
    }

    #[test]
    fn latency_includes_queueing_from_offer_time() {
        let mut link = SimLink::new(TransportCost::new(100, 0.0, 0));
        // Parcel offered at t=0 but flushed at t=900.
        let m = msg(900, 1, 0);
        link.transmit(&m, |_| 0);
        let r = link.report();
        // Arrival = 900 (flush) + 100 (α) = 1000; latency from offer = 1000.
        assert!((r.mean_latency_ns - 1_000.0).abs() < 1.0);
    }

    #[test]
    fn report_aggregates() {
        let mut link = SimLink::new(TransportCost::new(100, 1.0, 10));
        link.transmit(&msg(0, 4, 16), |_| 0);
        link.transmit(&msg(0, 2, 16), |_| 0);
        let r = link.report();
        assert_eq!(r.wire_messages, 2);
        assert_eq!(r.parcels, 6);
        assert_eq!(r.mean_coalesce, 3.0);
        assert_eq!(r.bytes as usize, 4 * 48 + 2 * 48);
        assert!(r.parcels_per_sec() > 0.0);
    }

    #[test]
    fn dropped_message_occupies_link_but_never_arrives() {
        let plan = FaultPlan::new(0).outage(0, 10_000);
        let mut link = SimLink::with_faults(TransportCost::new(1_000, 0.0, 500), plan);
        let d = link.transmit(&msg(0, 2, 0), |_| 0);
        assert!(d.is_empty());
        assert_eq!(
            link.free_at_ns(),
            1_000,
            "drop still serializes the TX side"
        );
        let r = link.report();
        assert_eq!(r.dropped_wire_messages, 1);
        assert_eq!(r.dropped_parcels, 2);
        assert_eq!(r.parcels, 0);
        assert_eq!(r.last_arrival_ns, 0);
    }

    #[test]
    fn duplicated_message_delivers_each_parcel_twice() {
        let plan = FaultPlan::new(0).duplicate_prob(1.0);
        let mut link = SimLink::with_faults(TransportCost::new(100, 0.0, 50), plan);
        let d = link.transmit(&msg(0, 3, 0), |_| 0);
        assert_eq!(d.len(), 6);
        let r = link.report();
        assert_eq!(r.parcels, 3, "primary copies only");
        assert_eq!(r.duplicate_parcels, 3);
    }

    #[test]
    fn faulty_link_is_deterministic_per_seed() {
        let run = || {
            let plan = FaultPlan::new(11)
                .drop_prob(0.3)
                .duplicate_prob(0.2)
                .jitter_ns(2_000);
            let mut link = SimLink::with_faults(TransportCost::cluster(), plan);
            let mut all = Vec::new();
            for i in 0..200u64 {
                all.extend(link.transmit(&msg(i * 3_000, 2, 32), |_| i * 3_000));
            }
            (all, link.report())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_link_report() {
        let link = SimLink::new(TransportCost::cluster());
        let r = link.report();
        assert_eq!(r.wire_messages, 0);
        assert_eq!(r.mean_coalesce, 0.0);
        assert_eq!(r.parcels_per_sec(), 0.0);
    }
}
