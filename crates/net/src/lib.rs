//! # lg-net — parcel transport substrate with adaptive coalescing
//!
//! Task-parallel runtimes move work and data between localities as
//! *parcels* (active messages). Sending each parcel individually pays the
//! per-message cost `α` once per parcel; coalescing `n` parcels into one
//! wire message amortizes `α` at the price of queueing delay while the
//! buffer fills. The coalescing window is therefore a classic online-tuning
//! knob: the right setting depends on the offered load, which changes at
//! phase boundaries.
//!
//! * [`parcel::Parcel`] — destination, tag, payload.
//! * [`cost::TransportCost`] — LogP-flavored `α + β·bytes` wire cost plus
//!   propagation latency.
//! * [`coalesce::Coalescer`] — buffers parcels until `window` parcels have
//!   accumulated or `max_delay` has elapsed since the oldest buffered
//!   parcel; both triggers are observable and the window is a knob.
//! * [`link::SimLink`] — a simulated serialized link over virtual time:
//!   computes departure/arrival times, tracks per-parcel latency and
//!   achieved throughput.
//! * [`endpoint::Endpoint`] — in-process locality endpoints for the real
//!   runtime (crossbeam channels), used by the parcel-storm workload.
//! * [`fault::FaultPlan`] — seeded, virtual-time fault injection for the
//!   link: random drops, duplicates, delay jitter, and link flaps.
//! * [`reliable::ReliableLink`] — ack/timeout retransmission with
//!   exponential backoff, per-destination retry budgets (token bucket),
//!   and per-destination circuit breakers; delivers each parcel exactly
//!   once despite injected faults. Recovery aggressiveness is exposed as
//!   knobs (`retry_budget`, `backoff_base_ns`, `breaker_threshold`).

#![warn(missing_docs)]

pub mod coalesce;
pub mod cost;
pub mod endpoint;
pub mod fault;
pub mod link;
pub mod parcel;
pub mod reliable;

pub use coalesce::{Coalescer, FlushReason};
pub use cost::TransportCost;
pub use endpoint::{Endpoint, EndpointPair};
pub use fault::{FaultAction, FaultPlan};
pub use link::{LinkReport, SimLink};
pub use parcel::Parcel;
pub use reliable::{ReliableConfig, ReliableLink, ReliableReport};
