//! LogP-flavored transport cost model.
//!
//! A wire message of `n` bytes occupies the (serialized) link for
//! `per_msg_ns + per_byte_ns · n` and arrives `latency_ns` after it leaves.
//! `per_msg_ns` is the per-message cost `α` that coalescing amortizes;
//! `per_byte_ns` is `β = 1/bandwidth`; `latency_ns` is propagation delay.

/// Cost parameters of a link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransportCost {
    /// Fixed per-wire-message occupancy (α), nanoseconds.
    pub per_msg_ns: u64,
    /// Per-byte occupancy (β), nanoseconds.
    pub per_byte_ns: f64,
    /// Propagation latency, nanoseconds.
    pub latency_ns: u64,
}

impl TransportCost {
    /// Creates a cost model.
    ///
    /// # Panics
    /// Panics if `per_byte_ns` is negative.
    pub fn new(per_msg_ns: u64, per_byte_ns: f64, latency_ns: u64) -> Self {
        assert!(per_byte_ns >= 0.0, "per-byte cost must be non-negative");
        Self {
            per_msg_ns,
            per_byte_ns,
            latency_ns,
        }
    }

    /// A cluster-interconnect-like link: α = 1 µs, ~10 GB/s, 2 µs latency.
    pub fn cluster() -> Self {
        Self::new(1_000, 0.1, 2_000)
    }

    /// Link occupancy of an `n`-byte wire message.
    pub fn occupancy_ns(&self, bytes: usize) -> u64 {
        self.per_msg_ns + (self.per_byte_ns * bytes as f64).ceil() as u64
    }

    /// End-to-end time of a single `n`-byte message on an idle link.
    pub fn message_time_ns(&self, bytes: usize) -> u64 {
        self.occupancy_ns(bytes) + self.latency_ns
    }

    /// Peak wire messages/second for `n`-byte messages (occupancy-limited).
    pub fn peak_msg_rate(&self, bytes: usize) -> f64 {
        1e9 / self.occupancy_ns(bytes) as f64
    }

    /// The classic coalescing win: total link occupancy of `k` parcels of
    /// `n` bytes each sent individually vs in one message.
    pub fn coalescing_gain(&self, k: usize, bytes_each: usize) -> f64 {
        if k == 0 {
            return 1.0;
        }
        let individual = k as u64 * self.occupancy_ns(bytes_each);
        let coalesced = self.occupancy_ns(k * bytes_each);
        individual as f64 / coalesced as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_is_affine() {
        let c = TransportCost::new(1_000, 0.5, 0);
        assert_eq!(c.occupancy_ns(0), 1_000);
        assert_eq!(c.occupancy_ns(100), 1_050);
        assert_eq!(c.occupancy_ns(1000), 1_500);
    }

    #[test]
    fn message_time_adds_latency() {
        let c = TransportCost::new(100, 1.0, 5_000);
        assert_eq!(c.message_time_ns(10), 100 + 10 + 5_000);
    }

    #[test]
    fn coalescing_gain_grows_then_saturates() {
        let c = TransportCost::cluster(); // α = 1000, β = 0.1
        let g1 = c.coalescing_gain(1, 64);
        let g8 = c.coalescing_gain(8, 64);
        let g64 = c.coalescing_gain(64, 64);
        let g512 = c.coalescing_gain(512, 64);
        assert!((g1 - 1.0).abs() < 1e-12);
        assert!(g8 > 4.0, "g8 = {g8}");
        assert!(g64 > g8);
        assert!(g512 > g64);
        // Asymptote: gain → occupancy(64)/ (β·64) ≈ 1006.4/6.4 ≈ 157.
        assert!(g512 < 160.0);
    }

    #[test]
    fn zero_k_gain_is_one() {
        assert_eq!(TransportCost::cluster().coalescing_gain(0, 64), 1.0);
    }

    #[test]
    fn peak_rate_inverse_of_occupancy() {
        let c = TransportCost::new(1_000, 0.0, 0);
        assert!((c.peak_msg_rate(0) - 1e6).abs() < 1e-6);
    }
}
