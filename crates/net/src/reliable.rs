//! Reliable parcel delivery over a faulty [`SimLink`].
//!
//! [`ReliableLink`] layers sender-side recovery on the simulated link:
//!
//! * **Ack/timeout retransmission** — every wire message is tracked until
//!   an ack returns (one propagation latency after arrival). A message the
//!   fault plan swallowed times out and is retransmitted with exponential
//!   backoff plus seeded jitter (so replays are exact and retry herds
//!   decorrelate).
//! * **Per-destination retry budget** — a token bucket bounds retry
//!   *rate*: a retransmission consumes a token, and when the bucket is
//!   empty the retry is deferred to the next refill instead of amplifying
//!   a storm. The bucket capacity is the `retry_budget` knob.
//! * **Per-destination circuit breaker** — after `breaker_threshold`
//!   consecutive ack failures the destination is *open*: sends are parked
//!   until a cooldown passes, then a single half-open probe decides
//!   whether to close the breaker or re-open it.
//!
//! Everything runs in virtual time through an internal event queue, so a
//! caller drives it exactly like the rest of the simulation: `send` wire
//! messages as the coalescer emits them, then [`ReliableLink::pump`] (or
//! [`ReliableLink::drain`]) to advance recovery and collect deliveries.
//! The receiver side deduplicates by parcel sequence number, so callers
//! observe **exactly-once** delivery despite duplication faults and
//! spurious retransmits.
//!
//! `retry_budget`, `backoff_base_ns`, and `breaker_threshold` are
//! [`AtomicKnob`]s: register them on a [`lg_core::KnobRegistry`] and
//! policies can steer recovery while a storm is in progress. The layer's
//! live recovery *state* — how many breakers are open or probing, how
//! full the retry buckets are — is published through [`ReliableGauges`]:
//! call [`ReliableLink::bind_introspection`] and policies can read breaker
//! state and budget fill from the same [`IntrospectionSnapshot`] they read
//! everything else from.
//!
//! Two load-control hooks serve admission layers above the link:
//! [`ReliableLink::shed`] records traffic an admission controller dropped
//! *before* it touched the wire (counted distinctly from faulted traffic,
//! consuming no retry budget), and [`ReliableLink::send_with_deadline`]
//! stops retransmitting a message whose deadline has passed — expired
//! parcels are counted apart from fault-driven abandonment.

use crate::coalesce::WireMessage;
use crate::cost::TransportCost;
use crate::fault::FaultPlan;
use crate::link::{Delivery, LinkReport, SimLink};
use crate::parcel::LocalityId;
use lg_core::knob::{AtomicKnob, KnobSpec};
use lg_core::snapshot::Introspection;
use lg_core::Knob;
use lg_metrics::{CounterHandle, CounterRegistry, Histogram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Static configuration for the reliability layer. The three fields that
/// double as knobs (`retry_budget`, `backoff_base_ns`,
/// `breaker_threshold`) seed the knobs' initial values.
#[derive(Clone, Copy, Debug)]
pub struct ReliableConfig {
    /// Sender-side ack timeout before a transmission counts as lost.
    pub ack_timeout_ns: u64,
    /// First retry backoff; doubles per attempt (the `backoff_base_ns`
    /// knob).
    pub backoff_base_ns: u64,
    /// Backoff ceiling.
    pub backoff_max_ns: u64,
    /// Jitter added to each backoff, as a fraction of the backoff.
    pub jitter_frac: f64,
    /// Attempts per message before the parcels are abandoned.
    pub max_attempts: u32,
    /// Token-bucket capacity for retries, per destination (the
    /// `retry_budget` knob).
    pub retry_budget: i64,
    /// Token refill rate, tokens per virtual second.
    pub retry_refill_per_sec: f64,
    /// Consecutive ack failures that open the breaker (the
    /// `breaker_threshold` knob).
    pub breaker_threshold: i64,
    /// How long an open breaker parks a destination before the half-open
    /// probe.
    pub breaker_cooldown_ns: u64,
    /// Seeded jitter added to each breaker cooldown, as a fraction of the
    /// cooldown. Decorrelates half-open probes so breakers across
    /// destinations don't re-close (or re-open) in lockstep. Defaults to
    /// `0.0` (no jitter) so existing fault experiments replay bit-exactly;
    /// overload scenarios enable it (the serving stack uses `0.25`).
    pub breaker_jitter_frac: f64,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        Self {
            ack_timeout_ns: 200_000,
            backoff_base_ns: 50_000,
            backoff_max_ns: 5_000_000,
            jitter_frac: 0.25,
            max_attempts: 64,
            retry_budget: 32,
            retry_refill_per_sec: 10_000.0,
            breaker_threshold: 8,
            breaker_cooldown_ns: 2_000_000,
            breaker_jitter_frac: 0.0,
        }
    }
}

/// Aggregate statistics of the reliability layer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReliableReport {
    /// Parcels offered through [`ReliableLink::send`].
    pub offered_parcels: u64,
    /// Parcels delivered exactly once (goodput numerator).
    pub unique_parcels: u64,
    /// Receiver-side duplicate copies suppressed by seq dedup.
    pub duplicates_suppressed: u64,
    /// Wire-message retransmissions performed.
    pub retransmissions: u64,
    /// Retry tokens consumed (equals retransmissions that paid a token).
    pub retries_consumed: u64,
    /// Retries deferred because the destination's bucket was empty.
    pub budget_deferrals: u64,
    /// Sends parked because the destination's breaker was open.
    pub breaker_rejections: u64,
    /// Times a breaker transitioned closed/half-open → open.
    pub breaker_open_events: u64,
    /// Acks received.
    pub acks: u64,
    /// Ack timeouts (failed transmissions detected).
    pub timeouts: u64,
    /// Parcels abandoned after `max_attempts` (fault-driven give-up).
    pub abandoned_parcels: u64,
    /// Parcels shed by an admission layer above the link: never offered
    /// to the wire, never retried (see [`ReliableLink::shed`]).
    pub shed_parcels: u64,
    /// Parcels whose retransmission stopped because their deadline
    /// passed (see [`ReliableLink::send_with_deadline`]) — distinct from
    /// `abandoned_parcels`, which is fault-driven.
    pub deadline_expired_parcels: u64,
    /// Arrival time of the last unique delivery.
    pub last_delivery_ns: u64,
    /// Mean offer→first-delivery latency over unique parcels, ns.
    pub mean_delivery_latency_ns: f64,
    /// 99th-percentile offer→first-delivery latency, ns.
    pub p99_delivery_latency_ns: u64,
}

impl ReliableReport {
    /// Unique parcels per second over the delivery makespan.
    pub fn goodput_parcels_per_sec(&self) -> f64 {
        if self.last_delivery_ns == 0 {
            0.0
        } else {
            self.unique_parcels as f64 * 1e9 / self.last_delivery_ns as f64
        }
    }

    /// Retransmissions per wire-offered parcel (retry amplification).
    ///
    /// Shed parcels never entered [`ReliableLink::send`], so they appear
    /// in neither numerator nor denominator: an admission layer that
    /// sheds aggressively cannot *dilute* the amplification of the
    /// traffic that did hit the wire. Deadline-expired parcels stay in
    /// the denominator — they were offered, and their pre-expiry retries
    /// are real wire load.
    pub fn retry_amplification(&self) -> f64 {
        if self.offered_parcels == 0 {
            0.0
        } else {
            self.retransmissions as f64 / self.offered_parcels as f64
        }
    }

    /// Fraction of wire-offered parcels lost to *faults* (abandoned after
    /// `max_attempts`), excluding deadline expiry — the fault-loss signal
    /// an admission policy should not confuse with overload shedding.
    pub fn fault_loss_frac(&self) -> f64 {
        if self.offered_parcels == 0 {
            0.0
        } else {
            self.abandoned_parcels as f64 / self.offered_parcels as f64
        }
    }
}

/// Live recovery-state gauges of a [`ReliableLink`], shared via `Arc` so
/// the [`Introspection`] facade (and anything else) can read them while
/// the link is being driven. Values update on the link's own event paths,
/// so they are exact as of the link's last processed event.
#[derive(Debug, Default)]
pub struct ReliableGauges {
    breakers_open: AtomicI64,
    breakers_half_open: AtomicI64,
    budget_tokens_milli: AtomicI64,
    budget_capacity_milli: AtomicI64,
}

impl ReliableGauges {
    /// Destinations whose circuit breaker is currently open.
    pub fn breakers_open(&self) -> i64 {
        self.breakers_open.load(Ordering::Relaxed)
    }

    /// Destinations currently in the half-open (probing) state.
    pub fn breakers_half_open(&self) -> i64 {
        self.breakers_half_open.load(Ordering::Relaxed)
    }

    /// Aggregate retry-budget fill across destinations, in `[0, 1]`.
    /// `NaN` until any destination has needed a retry token (no buckets
    /// exist yet — a fault-free link never materialises one).
    pub fn budget_fill(&self) -> f64 {
        let cap = self.budget_capacity_milli.load(Ordering::Relaxed);
        if cap <= 0 {
            f64::NAN
        } else {
            self.budget_tokens_milli.load(Ordering::Relaxed) as f64 / cap as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum BreakerState {
    Closed,
    Open { until_ns: u64 },
    HalfOpen { probe_in_flight: bool },
}

struct Breaker {
    state: BreakerState,
    consecutive_failures: i64,
}

impl Breaker {
    fn new() -> Self {
        Self {
            state: BreakerState::Closed,
            consecutive_failures: 0,
        }
    }

    /// Whether a transmission may proceed now; `Err(retry_at)` parks it.
    fn allow(&mut self, now_ns: u64) -> Result<(), u64> {
        match self.state {
            BreakerState::Closed => Ok(()),
            BreakerState::Open { until_ns } if now_ns < until_ns => Err(until_ns),
            BreakerState::Open { .. } => {
                self.state = BreakerState::HalfOpen {
                    probe_in_flight: true,
                };
                Ok(())
            }
            BreakerState::HalfOpen {
                probe_in_flight: false,
            } => {
                self.state = BreakerState::HalfOpen {
                    probe_in_flight: true,
                };
                Ok(())
            }
            // A probe is already out; wait for its verdict.
            BreakerState::HalfOpen {
                probe_in_flight: true,
            } => Err(now_ns + 1),
        }
    }

    fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Returns true if this failure opened the breaker.
    fn record_failure(&mut self, now_ns: u64, threshold: i64, cooldown_ns: u64) -> bool {
        self.consecutive_failures += 1;
        let opened = match self.state {
            BreakerState::HalfOpen { .. } => true,
            BreakerState::Closed => self.consecutive_failures >= threshold.max(1),
            BreakerState::Open { .. } => false,
        };
        if opened {
            self.state = BreakerState::Open {
                until_ns: now_ns + cooldown_ns,
            };
        }
        opened
    }
}

struct TokenBucket {
    tokens: f64,
    last_refill_ns: u64,
}

impl TokenBucket {
    fn new(capacity: i64) -> Self {
        Self {
            tokens: capacity.max(0) as f64,
            last_refill_ns: 0,
        }
    }

    fn refill(&mut self, now_ns: u64, capacity: f64, refill_per_ns: f64) {
        if now_ns > self.last_refill_ns {
            self.tokens =
                (self.tokens + (now_ns - self.last_refill_ns) as f64 * refill_per_ns).min(capacity);
            self.last_refill_ns = now_ns;
        }
        // A capacity knob lowered mid-run clamps immediately.
        self.tokens = self.tokens.min(capacity);
    }

    fn try_take(&mut self, now_ns: u64, capacity: f64, refill_per_ns: f64) -> bool {
        self.refill(now_ns, capacity, refill_per_ns);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Earliest time at which a token will be available.
    fn next_ready_ns(&self, now_ns: u64, refill_per_ns: f64) -> u64 {
        if self.tokens >= 1.0 {
            now_ns
        } else if refill_per_ns <= 0.0 {
            u64::MAX
        } else {
            now_ns + ((1.0 - self.tokens) / refill_per_ns).ceil() as u64
        }
    }
}

#[derive(Debug)]
enum EventKind {
    /// (Re)attempt transmission of a pending message.
    Attempt { entry: usize },
    /// Deliveries reach the receiver.
    Arrive { deliveries: Vec<Delivery> },
    /// The ack for attempt `attempt` of `entry` returns.
    Ack { entry: usize, attempt: u32 },
    /// The ack timer for attempt `attempt` of `entry` fires.
    Timeout { entry: usize, attempt: u32 },
}

struct Event {
    t_ns: u64,
    id: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.t_ns == other.t_ns && self.id == other.id
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    // Min-heap by (time, insertion id): deterministic tie-breaking.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.t_ns, other.id).cmp(&(self.t_ns, self.id))
    }
}

struct PendingMsg {
    msg: WireMessage,
    attempts: u32,
    resolved: bool,
    /// Sender-side retransmission deadline; `u64::MAX` = none.
    deadline_ns: u64,
}

#[derive(Clone, Default)]
struct MetricHandles {
    retransmissions: Option<CounterHandle>,
    timeouts: Option<CounterHandle>,
    acks: Option<CounterHandle>,
    unique: Option<CounterHandle>,
    dup_suppressed: Option<CounterHandle>,
    abandoned: Option<CounterHandle>,
    shed: Option<CounterHandle>,
    deadline_expired: Option<CounterHandle>,
    breaker_open: Option<CounterHandle>,
    breaker_rejections: Option<CounterHandle>,
    budget_deferrals: Option<CounterHandle>,
}

/// Ack/timeout retransmission, retry budgets, and circuit breakers over a
/// (possibly fault-injected) [`SimLink`]. See the module docs.
pub struct ReliableLink {
    link: SimLink,
    config: ReliableConfig,
    retry_budget_knob: Arc<AtomicKnob>,
    backoff_base_knob: Arc<AtomicKnob>,
    breaker_threshold_knob: Arc<AtomicKnob>,
    rng: StdRng,
    /// Dedicated stream for breaker-cooldown jitter, so opening a breaker
    /// never perturbs the backoff-jitter replay of everything else.
    breaker_rng: StdRng,
    events: BinaryHeap<Event>,
    next_event_id: u64,
    pending: Vec<PendingMsg>,
    offer_times: HashMap<u64, u64>,
    delivered_seqs: HashSet<u64>,
    buckets: HashMap<LocalityId, TokenBucket>,
    breakers: HashMap<LocalityId, Breaker>,
    latency_hist: Histogram,
    latency_sum: f64,
    report: ReliableReport,
    metrics: MetricHandles,
    gauges: Arc<ReliableGauges>,
}

impl ReliableLink {
    /// Wraps a fault-free link. `seed` drives backoff jitter.
    pub fn new(cost: TransportCost, config: ReliableConfig, seed: u64) -> Self {
        Self::over(SimLink::new(cost), config, seed)
    }

    /// Wraps a fault-injected link.
    pub fn with_faults(
        cost: TransportCost,
        plan: FaultPlan,
        config: ReliableConfig,
        seed: u64,
    ) -> Self {
        Self::over(SimLink::with_faults(cost, plan), config, seed)
    }

    /// Wraps an existing link.
    pub fn over(link: SimLink, config: ReliableConfig, seed: u64) -> Self {
        assert!(config.ack_timeout_ns > 0, "ack timeout must be positive");
        assert!(config.max_attempts > 0, "at least one attempt is required");
        Self {
            link,
            config,
            retry_budget_knob: AtomicKnob::new(
                KnobSpec::new("retry_budget", 0, 4_096)
                    .with_unit("tokens")
                    .with_default(config.retry_budget),
                config.retry_budget,
            ),
            backoff_base_knob: AtomicKnob::new(
                KnobSpec::new("backoff_base_ns", 1_000, 1_000_000_000)
                    .with_unit("ns")
                    .with_default(config.backoff_base_ns as i64),
                config.backoff_base_ns as i64,
            ),
            breaker_threshold_knob: AtomicKnob::new(
                KnobSpec::new("breaker_threshold", 1, 1_024)
                    .with_unit("failures")
                    .with_default(config.breaker_threshold),
                config.breaker_threshold,
            ),
            rng: StdRng::seed_from_u64(seed),
            breaker_rng: StdRng::seed_from_u64(seed ^ 0x5bd1_e995),
            events: BinaryHeap::new(),
            next_event_id: 0,
            pending: Vec::new(),
            offer_times: HashMap::new(),
            delivered_seqs: HashSet::new(),
            buckets: HashMap::new(),
            breakers: HashMap::new(),
            latency_hist: Histogram::new(),
            latency_sum: 0.0,
            report: ReliableReport::default(),
            metrics: MetricHandles::default(),
            gauges: Arc::new(ReliableGauges::default()),
        }
    }

    /// The retry-budget knob (token-bucket capacity per destination).
    pub fn retry_budget_knob(&self) -> &Arc<AtomicKnob> {
        &self.retry_budget_knob
    }

    /// The backoff-base knob.
    pub fn backoff_base_knob(&self) -> &Arc<AtomicKnob> {
        &self.backoff_base_knob
    }

    /// The breaker-threshold knob.
    pub fn breaker_threshold_knob(&self) -> &Arc<AtomicKnob> {
        &self.breaker_threshold_knob
    }

    /// The layer's live recovery-state gauges (breaker counts, aggregate
    /// retry-budget fill). Cheap to clone and read from anywhere.
    pub fn gauges(&self) -> &Arc<ReliableGauges> {
        &self.gauges
    }

    /// Registers the recovery-state gauges on the introspection facade,
    /// so policies see breaker state and budget fill in every
    /// [`IntrospectionSnapshot`](lg_core::IntrospectionSnapshot):
    ///
    /// * `net.reliable.breakers_open` — destinations with an open breaker
    /// * `net.reliable.breakers_half_open` — destinations mid-probe
    /// * `net.reliable.budget_fill` — aggregate token fill in `[0, 1]`
    ///   (absent until any destination has needed a retry token)
    pub fn bind_introspection(&self, intro: &Introspection) {
        let g = self.gauges.clone();
        intro.register_gauge("net.reliable.breakers_open", move || {
            g.breakers_open() as f64
        });
        let g = self.gauges.clone();
        intro.register_gauge("net.reliable.breakers_half_open", move || {
            g.breakers_half_open() as f64
        });
        let g = self.gauges.clone();
        intro.register_gauge("net.reliable.budget_fill", move || g.budget_fill());
    }

    /// Whether `dest`'s circuit breaker is currently open (sends to it
    /// would park). Admission layers use this to fail fast instead of
    /// queueing doomed work behind a dead destination.
    pub fn breaker_is_open(&self, dest: LocalityId) -> bool {
        matches!(
            self.breakers.get(&dest).map(|b| b.state),
            Some(BreakerState::Open { .. })
        )
    }

    /// Publishes the layer's counters into `reg` under `net.reliable.*`.
    ///
    /// Send-path counters (bumped per parcel or per retransmission round)
    /// are striped so concurrent senders never contend on a shared cache
    /// line; the rare failure/breaker counters stay single-cell.
    pub fn bind_metrics(&mut self, reg: &CounterRegistry) {
        self.metrics = MetricHandles {
            retransmissions: Some(reg.striped_counter("net.reliable.retransmissions")),
            timeouts: Some(reg.striped_counter("net.reliable.timeouts")),
            acks: Some(reg.striped_counter("net.reliable.acks")),
            unique: Some(reg.striped_counter("net.reliable.unique_parcels")),
            dup_suppressed: Some(reg.striped_counter("net.reliable.duplicates_suppressed")),
            abandoned: Some(reg.counter("net.reliable.abandoned_parcels")),
            shed: Some(reg.striped_counter("net.reliable.shed")),
            deadline_expired: Some(reg.striped_counter("net.reliable.deadline_expired")),
            breaker_open: Some(reg.counter("net.reliable.breaker_open_events")),
            breaker_rejections: Some(reg.counter("net.reliable.breaker_rejections")),
            budget_deferrals: Some(reg.counter("net.reliable.budget_deferrals")),
        };
    }

    /// Accepts a wire message for reliable delivery. `offer_time_of` maps
    /// each parcel seq to its original offer time (latency accounting,
    /// same contract as [`SimLink::transmit`]). Recovery runs when the
    /// caller next pumps past `msg.t_ns`.
    pub fn send(&mut self, msg: WireMessage, offer_time_of: impl Fn(u64) -> u64) {
        self.send_with_deadline(msg, u64::MAX, offer_time_of);
    }

    /// Like [`ReliableLink::send`], but retransmission stops once
    /// `deadline_ns` passes: an attempt (initial or retry) due at or
    /// after the deadline resolves the message as *deadline-expired*
    /// instead — counted in [`ReliableReport::deadline_expired_parcels`]
    /// and `net.reliable.deadline_expired`, distinct from fault-driven
    /// abandonment. Copies already in flight may still arrive (and count
    /// as unique deliveries); expiry is a sender-side stop, and the
    /// serving layer owns end-to-end deadline accounting.
    pub fn send_with_deadline(
        &mut self,
        msg: WireMessage,
        deadline_ns: u64,
        offer_time_of: impl Fn(u64) -> u64,
    ) {
        for p in &msg.parcels {
            self.offer_times.insert(p.seq, offer_time_of(p.seq));
        }
        self.report.offered_parcels += msg.parcels.len() as u64;
        let t = msg.t_ns;
        let entry = self.pending.len();
        self.pending.push(PendingMsg {
            msg,
            attempts: 0,
            resolved: false,
            deadline_ns,
        });
        self.schedule(t, EventKind::Attempt { entry });
    }

    /// Records `msg` as shed by an admission layer above the link. The
    /// parcels never touch the wire, consume no retry budget, and are
    /// counted in [`ReliableReport::shed_parcels`] and the (striped)
    /// `net.reliable.shed` counter — distinct from every fault-driven
    /// loss class, so goodput accounting can tell "we chose not to serve
    /// this" apart from "the network ate it".
    pub fn shed(&mut self, msg: &WireMessage) {
        let n = msg.parcels.len() as u64;
        self.report.shed_parcels += n;
        if let Some(c) = &self.metrics.shed {
            c.add(n);
        }
    }

    /// Processes all recovery events up to and including `until_ns`,
    /// returning the unique deliveries that arrived (dedup'd by seq, in
    /// arrival order).
    pub fn pump(&mut self, until_ns: u64) -> Vec<Delivery> {
        let mut out = Vec::new();
        while let Some(ev) = self.events.peek() {
            if ev.t_ns > until_ns {
                break;
            }
            let ev = self.events.pop().unwrap();
            self.handle(ev, &mut out);
        }
        out
    }

    /// Runs recovery to completion (all sends delivered or abandoned).
    pub fn drain(&mut self) -> Vec<Delivery> {
        self.pump(u64::MAX)
    }

    /// Whether any message is still awaiting delivery or abandonment.
    pub fn in_flight(&self) -> bool {
        !self.events.is_empty()
    }

    /// Statistics of the reliability layer so far.
    pub fn report(&self) -> ReliableReport {
        let mut r = self.report.clone();
        r.mean_delivery_latency_ns = if r.unique_parcels == 0 {
            0.0
        } else {
            self.latency_sum / r.unique_parcels as f64
        };
        r.p99_delivery_latency_ns = self.latency_hist.p99();
        r
    }

    /// Statistics of the underlying raw link.
    pub fn link_report(&self) -> LinkReport {
        self.link.report()
    }

    fn schedule(&mut self, t_ns: u64, kind: EventKind) {
        let id = self.next_event_id;
        self.next_event_id += 1;
        self.events.push(Event { t_ns, id, kind });
    }

    fn refill_per_ns(&self) -> f64 {
        self.config.retry_refill_per_sec / 1e9
    }

    /// Recounts breaker states into the shared gauges. O(destinations),
    /// called only on state-changing paths (ack, timeout, probe).
    fn publish_breaker_gauges(&self) {
        let (mut open, mut half) = (0i64, 0i64);
        for b in self.breakers.values() {
            match b.state {
                BreakerState::Open { .. } => open += 1,
                BreakerState::HalfOpen { .. } => half += 1,
                BreakerState::Closed => {}
            }
        }
        self.gauges.breakers_open.store(open, Ordering::Relaxed);
        self.gauges
            .breakers_half_open
            .store(half, Ordering::Relaxed);
    }

    /// Republishes aggregate token fill after any bucket activity.
    fn publish_budget_gauges(&self) {
        let capacity = self.retry_budget_knob.get().max(0) as f64;
        let tokens: f64 = self.buckets.values().map(|b| b.tokens.min(capacity)).sum();
        let total_cap = capacity * self.buckets.len() as f64;
        self.gauges
            .budget_tokens_milli
            .store((tokens * 1e3) as i64, Ordering::Relaxed);
        self.gauges
            .budget_capacity_milli
            .store((total_cap * 1e3) as i64, Ordering::Relaxed);
    }

    /// Breaker cooldown with seeded jitter from the dedicated stream, so
    /// destinations that trip together probe (and re-close) apart.
    fn jittered_cooldown(&mut self) -> u64 {
        let base = self.config.breaker_cooldown_ns;
        let jitter_max = (base as f64 * self.config.breaker_jitter_frac) as u64;
        if jitter_max == 0 {
            base
        } else {
            base + self.breaker_rng.gen_range(0..=jitter_max)
        }
    }

    /// Resolves a pending message as deadline-expired (sender stops
    /// retransmitting; distinct from fault-driven abandonment).
    fn expire(&mut self, entry: usize) {
        let p = &mut self.pending[entry];
        p.resolved = true;
        let n = p.msg.parcels.len() as u64;
        self.report.deadline_expired_parcels += n;
        if let Some(c) = &self.metrics.deadline_expired {
            c.add(n);
        }
    }

    fn handle(&mut self, ev: Event, out: &mut Vec<Delivery>) {
        let now = ev.t_ns;
        match ev.kind {
            EventKind::Attempt { entry } => self.attempt(entry, now),
            EventKind::Arrive { deliveries } => {
                for d in deliveries {
                    if self.delivered_seqs.insert(d.seq) {
                        self.report.unique_parcels += 1;
                        self.report.last_delivery_ns =
                            self.report.last_delivery_ns.max(d.arrived_ns);
                        let offered = self
                            .offer_times
                            .get(&d.seq)
                            .copied()
                            .unwrap_or(d.arrived_ns);
                        let lat = d.arrived_ns.saturating_sub(offered);
                        self.latency_hist.record(lat);
                        self.latency_sum += lat as f64;
                        if let Some(c) = &self.metrics.unique {
                            c.inc();
                        }
                        out.push(d);
                    } else {
                        self.report.duplicates_suppressed += 1;
                        if let Some(c) = &self.metrics.dup_suppressed {
                            c.inc();
                        }
                    }
                }
            }
            EventKind::Ack { entry, attempt } => {
                let p = &mut self.pending[entry];
                if p.resolved || p.attempts != attempt {
                    return; // stale ack for a superseded attempt
                }
                p.resolved = true;
                let dest = p.msg.dest;
                self.report.acks += 1;
                if let Some(c) = &self.metrics.acks {
                    c.inc();
                }
                self.breakers
                    .entry(dest)
                    .or_insert_with(Breaker::new)
                    .record_success();
                self.publish_breaker_gauges();
            }
            EventKind::Timeout { entry, attempt } => {
                let p = &self.pending[entry];
                if p.resolved || p.attempts != attempt {
                    return; // the attempt was acked, or already superseded
                }
                let dest = p.msg.dest;
                self.report.timeouts += 1;
                if let Some(c) = &self.metrics.timeouts {
                    c.inc();
                }
                let threshold = self.breaker_threshold_knob.get();
                let cooldown = self.jittered_cooldown();
                let opened = self
                    .breakers
                    .entry(dest)
                    .or_insert_with(Breaker::new)
                    .record_failure(now, threshold, cooldown);
                self.publish_breaker_gauges();
                if opened {
                    self.report.breaker_open_events += 1;
                    if let Some(c) = &self.metrics.breaker_open {
                        c.inc();
                    }
                }
                if self.pending[entry].attempts >= self.config.max_attempts {
                    let p = &mut self.pending[entry];
                    p.resolved = true;
                    self.report.abandoned_parcels += p.msg.parcels.len() as u64;
                    if let Some(c) = &self.metrics.abandoned {
                        c.add(p.msg.parcels.len() as u64);
                    }
                    return;
                }
                let backoff = self.backoff_ns(self.pending[entry].attempts);
                self.schedule(now + backoff, EventKind::Attempt { entry });
            }
        }
    }

    /// Exponential backoff for the retry after `attempts` tries, with
    /// seeded jitter.
    fn backoff_ns(&mut self, attempts: u32) -> u64 {
        let base = self.backoff_base_knob.get().max(1) as u64;
        let exp = base
            .saturating_shl(attempts.saturating_sub(1).min(32))
            .min(self.config.backoff_max_ns);
        let jitter_max = (exp as f64 * self.config.jitter_frac) as u64;
        if jitter_max == 0 {
            exp
        } else {
            exp + self.rng.gen_range(0..=jitter_max)
        }
    }

    fn attempt(&mut self, entry: usize, now: u64) {
        if self.pending[entry].resolved {
            return;
        }
        if now >= self.pending[entry].deadline_ns {
            // Past the deadline there is no point transmitting: the receiver
            // would discard the result anyway, and the retry would only feed
            // the overload. Expired is accounted separately from faulted.
            self.expire(entry);
            return;
        }
        let dest = self.pending[entry].msg.dest;
        // Circuit breaker gate.
        match self
            .breakers
            .entry(dest)
            .or_insert_with(Breaker::new)
            .allow(now)
        {
            Ok(()) => {}
            Err(retry_at) => {
                self.report.breaker_rejections += 1;
                if let Some(c) = &self.metrics.breaker_rejections {
                    c.inc();
                }
                // Park at least a quarter ack-timeout: a storm backlog can
                // leave thousands of messages waiting on one half-open
                // probe, and a finer poll would melt the event queue.
                let poll = (self.config.ack_timeout_ns / 4).max(1);
                self.schedule(retry_at.max(now + poll), EventKind::Attempt { entry });
                return;
            }
        }
        // `allow` may have flipped Open -> HalfOpen; keep the gauges honest.
        self.publish_breaker_gauges();
        // Retry budget gate: the first attempt is not a retry and rides
        // free; every retransmission pays a token.
        let is_retry = self.pending[entry].attempts > 0;
        if is_retry {
            let capacity = self.retry_budget_knob.get().max(0) as f64;
            let refill = self.refill_per_ns();
            let bucket = self
                .buckets
                .entry(dest)
                .or_insert_with(|| TokenBucket::new(capacity as i64));
            if !bucket.try_take(now, capacity, refill) {
                let ready = bucket.next_ready_ns(now, refill);
                if ready == u64::MAX {
                    // Zero refill and an empty bucket: this retry can never
                    // proceed, so the message is abandoned rather than
                    // parked forever.
                    let p = &mut self.pending[entry];
                    p.resolved = true;
                    self.report.abandoned_parcels += p.msg.parcels.len() as u64;
                    if let Some(c) = &self.metrics.abandoned {
                        c.add(p.msg.parcels.len() as u64);
                    }
                    return;
                }
                self.report.budget_deferrals += 1;
                if let Some(c) = &self.metrics.budget_deferrals {
                    c.inc();
                }
                self.publish_budget_gauges();
                self.schedule(ready.max(now + 1), EventKind::Attempt { entry });
                return;
            }
            self.report.retries_consumed += 1;
            self.report.retransmissions += 1;
            if let Some(c) = &self.metrics.retransmissions {
                c.inc();
            }
            self.publish_budget_gauges();
        }
        // Transmit. The message departs now (not at its original flush
        // time) on retries.
        let p = &mut self.pending[entry];
        p.attempts += 1;
        let attempt = p.attempts;
        p.msg.t_ns = now.max(p.msg.t_ns);
        let msg = p.msg.clone();
        let offer_times = &self.offer_times;
        let deliveries = self.link.transmit(&msg, |seq| {
            offer_times.get(&seq).copied().unwrap_or(msg.t_ns)
        });
        if deliveries.is_empty() {
            // The fault plan swallowed it; the sender only learns via the
            // ack timeout.
            self.schedule(
                now + self.config.ack_timeout_ns,
                EventKind::Timeout { entry, attempt },
            );
            return;
        }
        // Group arrivals (a duplicate copy may land later than the
        // primary) and schedule receiver-side arrival events.
        let mut by_arrival: HashMap<u64, Vec<Delivery>> = HashMap::new();
        let mut last_arrival = 0u64;
        for d in deliveries {
            last_arrival = last_arrival.max(d.arrived_ns);
            by_arrival.entry(d.arrived_ns).or_default().push(d);
        }
        let mut arrivals: Vec<(u64, Vec<Delivery>)> = by_arrival.into_iter().collect();
        arrivals.sort_by_key(|(t, _)| *t);
        for (t, ds) in arrivals {
            self.schedule(t, EventKind::Arrive { deliveries: ds });
        }
        // The ack returns one propagation latency after the last copy
        // lands; the timeout still guards against an ack racing the timer.
        let ack_at = last_arrival + self.link.cost().latency_ns;
        if ack_at <= now + self.config.ack_timeout_ns {
            self.schedule(ack_at, EventKind::Ack { entry, attempt });
        } else {
            // Ack would arrive after the timer fires: the sender times out
            // and retransmits spuriously; dedup absorbs the copies.
            self.schedule(
                now + self.config.ack_timeout_ns,
                EventKind::Timeout { entry, attempt },
            );
        }
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if shift >= self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::FlushReason;
    use crate::parcel::Parcel;

    fn msg(dest: u32, t_ns: u64, seqs: std::ops::Range<u64>) -> WireMessage {
        WireMessage {
            dest,
            parcels: seqs
                .map(|s| Parcel::new(0, dest, 0, s, vec![0; 32]))
                .collect(),
            reason: FlushReason::Window,
            t_ns,
        }
    }

    fn quick_config() -> ReliableConfig {
        ReliableConfig {
            ack_timeout_ns: 50_000,
            backoff_base_ns: 10_000,
            backoff_max_ns: 500_000,
            ..ReliableConfig::default()
        }
    }

    #[test]
    fn fault_free_delivery_is_exact() {
        let mut rl = ReliableLink::new(TransportCost::cluster(), quick_config(), 1);
        for i in 0..10u64 {
            rl.send(msg(1, i * 10_000, i * 4..(i + 1) * 4), |_| i * 10_000);
        }
        let delivered = rl.drain();
        assert_eq!(delivered.len(), 40);
        let r = rl.report();
        assert_eq!(r.unique_parcels, 40);
        assert_eq!(r.retransmissions, 0);
        assert_eq!(r.abandoned_parcels, 0);
        assert_eq!(r.acks, 10);
    }

    #[test]
    fn dropped_messages_are_retransmitted() {
        // First 200µs are an outage; the retry lands after it lifts.
        let plan = FaultPlan::new(0).outage(0, 200_000);
        let mut rl = ReliableLink::with_faults(TransportCost::cluster(), plan, quick_config(), 1);
        rl.send(msg(1, 0, 0..4), |_| 0);
        let delivered = rl.drain();
        assert_eq!(delivered.len(), 4);
        let r = rl.report();
        assert_eq!(r.unique_parcels, 4);
        assert!(r.retransmissions >= 1);
        assert!(r.timeouts >= 1);
        assert_eq!(r.abandoned_parcels, 0);
    }

    #[test]
    fn duplicates_suppressed_at_receiver() {
        let plan = FaultPlan::new(3).duplicate_prob(1.0);
        let mut rl = ReliableLink::with_faults(TransportCost::cluster(), plan, quick_config(), 1);
        for i in 0..20u64 {
            rl.send(msg(1, i * 50_000, i..i + 1), |_| i * 50_000);
        }
        let delivered = rl.drain();
        assert_eq!(delivered.len(), 20, "each parcel must surface exactly once");
        let r = rl.report();
        assert_eq!(r.unique_parcels, 20);
        assert_eq!(r.duplicates_suppressed, 20);
    }

    #[test]
    fn lossy_link_still_delivers_every_parcel_once() {
        let plan = FaultPlan::new(42)
            .drop_prob(0.4)
            .duplicate_prob(0.1)
            .jitter_ns(3_000);
        let mut rl = ReliableLink::with_faults(TransportCost::cluster(), plan, quick_config(), 7);
        let n = 100u64;
        for i in 0..n {
            rl.send(msg(1, i * 20_000, i * 2..(i + 1) * 2), |_| i * 20_000);
        }
        let delivered = rl.drain();
        let mut seqs: Vec<u64> = delivered.iter().map(|d| d.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), (n * 2) as usize, "every parcel exactly once");
        assert_eq!(rl.report().abandoned_parcels, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = || {
            let plan = FaultPlan::new(5).drop_prob(0.3).jitter_ns(10_000);
            let mut rl =
                ReliableLink::with_faults(TransportCost::cluster(), plan, quick_config(), 9);
            for i in 0..50u64 {
                rl.send(msg(1 + (i % 3) as u32, i * 30_000, i..i + 1), |_| {
                    i * 30_000
                });
            }
            let delivered = rl.drain();
            (delivered, rl.report())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn retry_budget_defers_when_exhausted() {
        // Zero refill and a 2-token bucket: a burst of lost messages must
        // defer retries rather than amplify.
        let plan = FaultPlan::new(1).outage(0, 1_000_000);
        let config = ReliableConfig {
            retry_budget: 2,
            retry_refill_per_sec: 1_000.0, // 1 token per ms
            ..quick_config()
        };
        let mut rl = ReliableLink::with_faults(TransportCost::cluster(), plan, config, 1);
        for i in 0..6u64 {
            rl.send(msg(1, 0, i..i + 1), |_| 0);
        }
        let delivered = rl.drain();
        assert_eq!(delivered.len(), 6, "deferral must not lose parcels");
        let r = rl.report();
        assert!(r.budget_deferrals > 0, "bucket should have run dry");
        assert_eq!(r.abandoned_parcels, 0);
    }

    #[test]
    fn breaker_opens_and_recovers() {
        // Link dead for 1ms, then clean. Low threshold so the storm trips
        // the breaker, and the half-open probe must eventually close it.
        let plan = FaultPlan::new(2).outage(0, 1_000_000);
        let config = ReliableConfig {
            breaker_threshold: 3,
            breaker_cooldown_ns: 100_000,
            ..quick_config()
        };
        let mut rl = ReliableLink::with_faults(TransportCost::cluster(), plan, config, 2);
        for i in 0..10u64 {
            rl.send(msg(1, i * 1_000, i..i + 1), |_| i * 1_000);
        }
        let delivered = rl.drain();
        assert_eq!(delivered.len(), 10);
        let r = rl.report();
        assert!(r.breaker_open_events >= 1, "storm should trip the breaker");
        assert!(r.breaker_rejections >= 1, "open breaker should park sends");
        assert_eq!(r.abandoned_parcels, 0);
    }

    #[test]
    fn knobs_are_live() {
        let rl = ReliableLink::new(TransportCost::cluster(), ReliableConfig::default(), 0);
        let reg = lg_core::KnobRegistry::new();
        reg.register(rl.retry_budget_knob().clone());
        reg.register(rl.backoff_base_knob().clone());
        reg.register(rl.breaker_threshold_knob().clone());
        assert_eq!(reg.value("retry_budget"), Some(32));
        reg.set("retry_budget", 64);
        assert_eq!(rl.retry_budget_knob().get(), 64);
        reg.set("breaker_threshold", 100_000); // clamped to spec max
        assert_eq!(rl.breaker_threshold_knob().get(), 1_024);
    }

    #[test]
    fn metrics_published_when_bound() {
        let plan = FaultPlan::new(4).drop_prob(0.5);
        let mut rl = ReliableLink::with_faults(TransportCost::cluster(), plan, quick_config(), 3);
        let reg = CounterRegistry::new();
        rl.bind_metrics(&reg);
        for i in 0..30u64 {
            rl.send(msg(1, i * 20_000, i..i + 1), |_| i * 20_000);
        }
        rl.drain();
        let r = rl.report();
        assert_eq!(
            reg.counter("net.reliable.unique_parcels").get(),
            r.unique_parcels
        );
        assert_eq!(
            reg.counter("net.reliable.retransmissions").get(),
            r.retransmissions
        );
        assert_eq!(reg.counter("net.reliable.acks").get(), r.acks);
        assert!(r.unique_parcels == 30);
    }

    #[test]
    fn abandonment_is_bounded_and_counted() {
        // Permanent outage with few attempts: everything must abandon, and
        // attempts must not exceed max_attempts per message.
        let plan = FaultPlan::new(0).outage(0, u64::MAX - 1);
        let config = ReliableConfig {
            max_attempts: 3,
            ..quick_config()
        };
        let mut rl = ReliableLink::with_faults(TransportCost::cluster(), plan, config, 0);
        for i in 0..5u64 {
            rl.send(msg(1, 0, i..i + 1), |_| 0);
        }
        let delivered = rl.drain();
        assert!(delivered.is_empty());
        let r = rl.report();
        assert_eq!(r.abandoned_parcels, 5);
        // 5 messages × 3 attempts; 2 of each are retries.
        assert_eq!(r.retransmissions, 10);
    }

    #[test]
    fn goodput_and_amplification_reported() {
        let plan = FaultPlan::new(8).drop_prob(0.2);
        let mut rl = ReliableLink::with_faults(TransportCost::cluster(), plan, quick_config(), 8);
        for i in 0..50u64 {
            rl.send(msg(1, i * 10_000, i..i + 1), |_| i * 10_000);
        }
        rl.drain();
        let r = rl.report();
        assert!(r.goodput_parcels_per_sec() > 0.0);
        assert!(r.retry_amplification() >= 0.0);
        assert!(r.mean_delivery_latency_ns > 0.0);
    }

    #[test]
    fn gauges_track_breaker_state() {
        // Storm into a dead window: the breaker opens (gauge goes high),
        // then the half-open probe closes it once the outage lifts.
        let plan = FaultPlan::new(2).outage(0, 1_000_000);
        let config = ReliableConfig {
            breaker_threshold: 3,
            breaker_cooldown_ns: 100_000,
            ..quick_config()
        };
        let mut rl = ReliableLink::with_faults(TransportCost::cluster(), plan, config, 2);
        let gauges = rl.gauges().clone();
        assert_eq!(gauges.breakers_open(), 0);
        for i in 0..10u64 {
            rl.send(msg(1, i * 1_000, i..i + 1), |_| i * 1_000);
        }
        // Pump through the outage: the breaker must be visibly open at
        // some intermediate point.
        let mut saw_open = false;
        for until in (50_000..1_000_000).step_by(50_000) {
            rl.pump(until);
            saw_open |= gauges.breakers_open() > 0;
        }
        assert!(saw_open, "open breaker never surfaced in the gauge");
        rl.drain();
        assert_eq!(gauges.breakers_open(), 0, "recovered breaker still open");
        assert_eq!(gauges.breakers_half_open(), 0);
    }

    #[test]
    fn gauges_track_budget_fill() {
        let mut rl = ReliableLink::new(TransportCost::cluster(), quick_config(), 1);
        // No destination has needed a retry token yet: fill is undefined.
        assert!(rl.gauges().budget_fill().is_nan());
        let plan = FaultPlan::new(1).outage(0, 400_000);
        let config = ReliableConfig {
            retry_budget: 8,
            retry_refill_per_sec: 1_000.0,
            ..quick_config()
        };
        rl = ReliableLink::with_faults(TransportCost::cluster(), plan, config, 1);
        let gauges = rl.gauges().clone();
        for i in 0..6u64 {
            rl.send(msg(1, 0, i..i + 1), |_| 0);
        }
        rl.pump(200_000);
        let fill = gauges.budget_fill();
        assert!(fill.is_finite(), "bucket exists after retries");
        assert!((0.0..=1.0).contains(&fill), "fill {fill} out of range");
        assert!(fill < 1.0, "retries should have drawn the bucket down");
    }

    #[test]
    fn introspection_snapshot_sees_link_gauges() {
        use lg_core::{ConcurrencyListener, Introspection, ProfileListener, TaskNames};
        let intro = Introspection::new(
            Arc::new(ProfileListener::new(TaskNames::new())),
            Arc::new(ConcurrencyListener::new(16)),
        );
        let plan = FaultPlan::new(2).outage(0, 1_000_000);
        let config = ReliableConfig {
            breaker_threshold: 2,
            breaker_cooldown_ns: 2_000_000,
            ..quick_config()
        };
        let mut rl = ReliableLink::with_faults(TransportCost::cluster(), plan, config, 2);
        rl.bind_introspection(&intro);
        for i in 0..8u64 {
            rl.send(msg(1, i * 1_000, i..i + 1), |_| i * 1_000);
        }
        rl.pump(500_000);
        let snap = intro.capture(500_000);
        let open = snap.value_by_name("net.reliable.breakers_open");
        assert_eq!(open, Some(1.0), "policy must see the open breaker");
        assert!(snap
            .value_by_name("net.reliable.breakers_half_open")
            .is_some());
    }

    #[test]
    fn probe_jitter_decorrelates_cooldowns() {
        let config = ReliableConfig {
            breaker_cooldown_ns: 1_000_000,
            breaker_jitter_frac: 0.5,
            ..quick_config()
        };
        let mut rl = ReliableLink::new(TransportCost::cluster(), config, 11);
        let draws: Vec<u64> = (0..8).map(|_| rl.jittered_cooldown()).collect();
        assert!(draws.iter().all(|&d| (1_000_000..=1_500_000).contains(&d)));
        let mut unique = draws.clone();
        unique.sort_unstable();
        unique.dedup();
        assert!(
            unique.len() > 1,
            "jittered cooldowns all identical: {draws:?}"
        );
        // Jitter disabled: bit-exact base cooldown, nothing drawn.
        let config = ReliableConfig {
            breaker_cooldown_ns: 1_000_000,
            ..quick_config()
        };
        let mut rl = ReliableLink::new(TransportCost::cluster(), config, 11);
        assert_eq!(rl.jittered_cooldown(), 1_000_000);
        assert_eq!(rl.jittered_cooldown(), 1_000_000);
    }

    #[test]
    fn probe_jitter_does_not_perturb_backoff_replay() {
        // Two identical lossy runs, one with breaker jitter: the delivery
        // outcome may shift, but the no-breaker run (threshold high enough
        // that nothing trips) must replay bit-exactly because cooldown
        // jitter draws from its own RNG stream.
        let run = |jitter: f64| {
            let plan = FaultPlan::new(5).drop_prob(0.3).jitter_ns(10_000);
            let config = ReliableConfig {
                breaker_threshold: 1_000, // never trips
                breaker_jitter_frac: jitter,
                ..quick_config()
            };
            let mut rl = ReliableLink::with_faults(TransportCost::cluster(), plan, config, 9);
            for i in 0..50u64 {
                rl.send(msg(1, i * 30_000, i..i + 1), |_| i * 30_000);
            }
            let delivered = rl.drain();
            (delivered, rl.report())
        };
        assert_eq!(run(0.0), run(0.9));
    }

    #[test]
    fn shed_is_counted_distinctly_and_consumes_nothing() {
        let mut rl = ReliableLink::new(TransportCost::cluster(), quick_config(), 1);
        let reg = CounterRegistry::new();
        rl.bind_metrics(&reg);
        rl.send(msg(1, 0, 0..4), |_| 0);
        rl.shed(&msg(1, 0, 4..10));
        rl.drain();
        let r = rl.report();
        assert_eq!(r.shed_parcels, 6);
        assert_eq!(r.offered_parcels, 4, "shed parcels never hit the wire");
        assert_eq!(r.unique_parcels, 4);
        assert_eq!(r.retries_consumed, 0, "shedding must not draw budget");
        assert_eq!(reg.counter("net.reliable.shed").get(), 6);
        // Amplification ignores shed traffic entirely.
        assert_eq!(r.retry_amplification(), 0.0);
    }

    #[test]
    fn deadline_expiry_is_distinct_from_abandonment() {
        // Permanent outage, generous attempt budget, tight deadline: the
        // sender must stop at the deadline and report expiry, not
        // fault-driven abandonment.
        let plan = FaultPlan::new(0).outage(0, u64::MAX - 1);
        let config = ReliableConfig {
            max_attempts: 50,
            ..quick_config()
        };
        let mut rl = ReliableLink::with_faults(TransportCost::cluster(), plan, config, 0);
        let reg = CounterRegistry::new();
        rl.bind_metrics(&reg);
        rl.send_with_deadline(msg(1, 0, 0..3), 120_000, |_| 0);
        let delivered = rl.drain();
        assert!(delivered.is_empty());
        let r = rl.report();
        assert_eq!(r.deadline_expired_parcels, 3);
        assert_eq!(r.abandoned_parcels, 0);
        assert_eq!(reg.counter("net.reliable.deadline_expired").get(), 3);
        // Pre-expiry retries are real wire load and stay visible.
        assert!(r.retransmissions >= 1);
        assert!(r.retransmissions < 50, "expiry must stop the retry stream");
    }

    #[test]
    fn deadline_is_harmless_on_a_healthy_link() {
        let mut rl = ReliableLink::new(TransportCost::cluster(), quick_config(), 1);
        rl.send_with_deadline(msg(1, 0, 0..4), u64::MAX, |_| 0);
        rl.send_with_deadline(msg(1, 10_000, 4..8), 100_000_000, |_| 10_000);
        let delivered = rl.drain();
        assert_eq!(delivered.len(), 8);
        let r = rl.report();
        assert_eq!(r.deadline_expired_parcels, 0);
        assert_eq!(r.unique_parcels, 8);
    }
}
