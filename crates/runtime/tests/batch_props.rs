//! Property tests for batched spawning and the LIFO-slot drain rule.
//!
//! The batch invariant: for *any* `(range, chunk)` — empty ranges and
//! chunks larger than the range included — `parallel_for` via
//! `spawn_batch` executes every index exactly once and reports
//! `chunks == ceil(len / chunk)`. The slot invariant: tasks sitting in a
//! worker's (unstealable) LIFO slot are never lost when the thread cap
//! parks that worker — the drain rule moves them to the injector first.

use lg_core::LookingGlass;
use lg_runtime::{PoolConfig, ThreadPool};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn pool(workers: usize) -> ThreadPool {
    ThreadPool::new(
        LookingGlass::builder().build(),
        PoolConfig {
            workers,
            spin_rounds: 4,
            register_knobs: false,
            faults: None,
        },
    )
}

proptest! {
    // Thread pools are expensive; keep the case count modest.
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn parallel_for_covers_any_range_chunk_exactly_once(
        workers in 1usize..4,
        start in 0usize..50,
        len in 0usize..400,
        // Reaches past any generated `len`, covering the oversized-chunk case.
        chunk in 1usize..500,
    ) {
        let p = pool(workers);
        let hits: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
        let stats = p.parallel_for("prop", start..start + len, chunk, |i| {
            hits[i - start].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert_eq!(stats.chunks, len.div_ceil(chunk));
        prop_assert_eq!(stats.iterations, len as u64);
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(Ordering::Relaxed), 1, "index {}", i + start);
        }
        // One batch push per non-empty call, zero per-chunk boxing.
        let expected_batches = u64::from(len > 0);
        prop_assert_eq!(p.counters().counter("rt.batch_spawns").get(), expected_batches);
        prop_assert_eq!(p.counters().counter("rt.boxed_tasks").get(), 0);
    }

    #[test]
    fn spawn_batch_chunk_boundaries_partition_the_range(
        len in 1usize..300,
        chunk in 1usize..350,
    ) {
        let p = pool(2);
        // Record each chunk's (start, end) and check they tile the range.
        let bounds = parking_lot::Mutex::new(Vec::new());
        let chunks = p.scope(|s| {
            let bounds = &bounds;
            s.spawn_batch("tile", 0..len, chunk, move |start, end| {
                bounds.lock().push((start, end));
            })
        });
        let mut bounds = bounds.into_inner();
        bounds.sort_unstable();
        prop_assert_eq!(bounds.len(), chunks);
        prop_assert_eq!(bounds.len(), len.div_ceil(chunk));
        let mut expected = 0;
        for &(start, end) in &bounds {
            prop_assert_eq!(start, expected, "chunks must tile without gap/overlap");
            prop_assert!(end > start);
            prop_assert!(end - start <= chunk);
            expected = end;
        }
        prop_assert_eq!(expected, len);
    }
}

/// LIFO-slot tasks survive a ThreadCap lower→raise cycle: worker-spawned
/// children land in the spawning worker's slot, and a cap change that
/// parks the worker must drain that slot rather than strand it.
#[test]
fn lifo_slot_tasks_survive_cap_cycles() {
    let p = Arc::new(pool(3));
    let count = Arc::new(AtomicU64::new(0));
    let rounds = 40;
    let children = 8;
    for round in 0..rounds {
        // Each parent runs on a worker, so its children go through the
        // LIFO slot (first child) and local deque.
        let inner = p.clone();
        let c = count.clone();
        p.spawn_named("parent", move || {
            for _ in 0..children {
                let c = c.clone();
                inner.spawn_named("child", move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        // Lower→raise while children are in flight.
        p.thread_cap().set_cap(1 + (round % 3));
    }
    p.thread_cap().set_cap(3);
    p.wait_idle();
    assert_eq!(
        count.load(Ordering::Relaxed),
        (rounds * children) as u64,
        "a LIFO-slot task was lost across a cap cycle"
    );
    assert_eq!(
        p.counters().counter("rt.spawned").get(),
        p.counters().counter("rt.executed").get(),
        "spawn/execute accounting must balance"
    );
}

/// Same cycle, but with the cap held low while slot-bound work is queued,
/// then raised — the parked workers' slots must already have been drained.
#[test]
fn slot_drain_happens_before_park() {
    let p = Arc::new(pool(2));
    let count = Arc::new(AtomicU64::new(0));
    for _ in 0..20 {
        let inner = p.clone();
        let c = count.clone();
        p.thread_cap().set_cap(2);
        p.spawn_named("parent", move || {
            let c2 = c.clone();
            inner.spawn_named("slot-child", move || {
                c2.fetch_add(1, Ordering::Relaxed);
            });
            // Parent keeps its worker busy long enough for a cap change
            // to land while the child sits in the slot.
            inner.thread_cap().set_cap(1);
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        p.wait_idle();
        p.thread_cap().set_cap(2);
    }
    assert_eq!(count.load(Ordering::Relaxed), 20);
}
