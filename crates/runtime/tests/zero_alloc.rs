//! The tentpole acceptance test: steady-state spawn/execute of an
//! inline-sized task performs **zero** heap allocation, measured with a
//! counting global allocator.
//!
//! This file deliberately holds a single `#[test]` — the allocator count
//! is process-global, so concurrent sibling tests would pollute it.
//!
//! The shape: warm the pool up (interner entry, profile map entries,
//! queue capacities, time-series buffers all reach steady state), then
//! snapshot the allocation counter, run another burst of inline spawns,
//! and require the delta to be exactly zero. A second section bounds
//! `parallel_for`: its per-call cost is O(1) allocations (scope state,
//! shared body `Arc`, task vector), independent of the chunk count.

use lg_core::LookingGlass;
use lg_runtime::{PoolConfig, ThreadPool};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_spawn_is_allocation_free() {
    let p = ThreadPool::new(
        LookingGlass::builder().build(),
        PoolConfig {
            workers: 1,
            spin_rounds: 16,
            register_knobs: true,
            faults: None,
        },
    );
    let count = Arc::new(AtomicU64::new(0));

    // Warm up: intern the name, fill the profile/concurrency listener
    // maps, grow the injector and worker deque to steady capacity. Two
    // rounds so every lazily-grown structure has seen the full load.
    let burst = 4000u64;
    for _ in 0..2 {
        for _ in 0..burst {
            let c = count.clone();
            p.spawn_named("steady", move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        p.wait_idle();
    }

    // Measured burst: spawn + execute must not touch the allocator at
    // all — bodies live inline in the task record, queues are warm, and
    // observation (events, profiles, counters) is allocation-free.
    let before = allocs();
    for _ in 0..burst {
        let c = count.clone();
        p.spawn_named("steady", move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
    }
    p.wait_idle();
    let delta = allocs() - before;
    assert_eq!(
        delta, 0,
        "steady-state spawn/execute of {burst} inline tasks made {delta} allocator calls"
    );
    assert_eq!(count.load(Ordering::Relaxed), 3 * burst);
    assert_eq!(
        p.counters().counter("rt.boxed_tasks").get(),
        0,
        "an inline-sized body fell off the inline path"
    );
    assert_eq!(p.counters().counter("rt.inline_tasks").get(), 3 * burst);

    // parallel_for: per-call allocations are O(1) — scope state, one
    // shared-body Arc, the task vector — not O(chunks). 512 chunks must
    // stay under a small constant budget once warm.
    let sink = AtomicU64::new(0);
    p.parallel_for("pf", 0..4096, 8, |i| {
        sink.fetch_add(i as u64, Ordering::Relaxed);
    });
    let before = allocs();
    let stats = p.parallel_for("pf", 0..4096, 8, |i| {
        sink.fetch_add(i as u64, Ordering::Relaxed);
    });
    let delta = allocs() - before;
    assert_eq!(stats.chunks, 512);
    assert!(
        delta <= 16,
        "parallel_for over 512 chunks made {delta} allocator calls; expected O(1)"
    );
}
