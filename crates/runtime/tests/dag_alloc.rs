//! Zero-allocation gate for the DAG release path.
//!
//! Building a DAG allocates (node table, successor lists) — that is the
//! *wiring* cost, paid before any dependency resolves. What must stay
//! allocation-free is the **release path**: a completing task walks its
//! successor edges, decrements remaining-dep counters, and the `1 → 0`
//! transition moves the pre-built inline task into the LIFO slot / deque
//! / injector. This test freezes a fully wired chain behind a gate node,
//! snapshots the allocator, opens the gate, and requires the entire
//! chain execution — N dep decrements, N promotions, N inline bodies, N
//! completions — to make zero allocator calls.
//!
//! Single `#[test]` per file: the allocation counter is process-global.

use lg_core::LookingGlass;
use lg_runtime::{DagHint, PoolConfig, ThreadPool};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

#[test]
fn dag_release_path_is_allocation_free() {
    let p = ThreadPool::new(
        LookingGlass::builder().build(),
        PoolConfig {
            workers: 1,
            spin_rounds: 16,
            register_knobs: true,
            faults: None,
        },
    );
    let chain = 512u64;
    let count = AtomicU64::new(0);

    // Warm-up round: intern names, fill profile maps, reach steady queue
    // capacity — same contract as the spawn fast-path gate.
    p.dag_scope(|g| {
        let c = &count;
        let mut prev = g.spawn_after_hinted("dag_gate", &[], DagHint::critical(chain), move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        for h in (0..chain).rev() {
            let c = &count;
            prev = g.spawn_after_hinted("dag_link", &[prev], DagHint::critical(h), move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(count.load(Ordering::Relaxed), chain + 1);
    count.store(0, Ordering::Relaxed);

    // Measured round: wire the whole chain behind a gate node that spins
    // until `go` flips, snapshot the allocator, open the gate, and let
    // the chain drain. Every release in the window is a counter
    // decrement + inline-task promotion; none may allocate.
    let go = AtomicBool::new(false);
    let before_cell = AtomicU64::new(0);
    p.dag_scope(|g| {
        let go = &go;
        let c = &count;
        let gate = g.spawn_after_hinted("dag_gate", &[], DagHint::critical(chain), move || {
            while !go.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            c.fetch_add(1, Ordering::Relaxed);
        });
        let mut prev = gate;
        for h in (0..chain).rev() {
            let c = &count;
            prev = g.spawn_after_hinted("dag_link", &[prev], DagHint::critical(h), move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Wiring done; everything past this point is pure release.
        before_cell.store(allocs(), Ordering::Release);
        go.store(true, Ordering::Release);
    });
    let delta = allocs() - before_cell.load(Ordering::Acquire);
    assert_eq!(count.load(Ordering::Relaxed), chain + 1);
    assert_eq!(
        delta, 0,
        "draining a {chain}-node dag chain made {delta} allocator calls"
    );
    // All bodies rode the inline tier; the critical hints took the
    // priority lane.
    assert_eq!(p.counters().counter("rt.boxed_tasks").get(), 0);
    assert!(p.counters().counter("rt.priority_pushes").get() >= chain);
}
