//! Stress and schedule-randomization tests for the work-stealing pool.
//!
//! The invariant under every schedule: each spawned task runs exactly
//! once, the pool quiesces, and observation balances — regardless of cap
//! churn, nesting, or panics.

use lg_core::LookingGlass;
use lg_runtime::{PoolConfig, ThreadPool};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn pool(workers: usize) -> ThreadPool {
    ThreadPool::new(
        LookingGlass::builder().build(),
        PoolConfig {
            workers,
            spin_rounds: 4,
            register_knobs: false,
            faults: None,
        },
    )
}

proptest! {
    // Thread pools are expensive; keep the case count modest.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn every_task_exactly_once_under_cap_churn(
        workers in 1usize..4,
        batches in proptest::collection::vec((1usize..5, 1usize..40), 1..6),
    ) {
        let p = pool(workers);
        let total: usize = batches.iter().map(|(_, n)| n).sum();
        let hits: Arc<Vec<AtomicU64>> = Arc::new((0..total).map(|_| AtomicU64::new(0)).collect());
        let mut idx = 0;
        for (cap, n) in &batches {
            p.thread_cap().set_cap(*cap);
            for _ in 0..*n {
                let hits = hits.clone();
                let i = idx;
                idx += 1;
                p.spawn_named("stress", move || {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        p.wait_idle();
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(Ordering::Relaxed), 1, "task {} ran wrong count", i);
        }
        prop_assert_eq!(p.lg().profiles().get("stress").unwrap().count, total as u64);
    }

    #[test]
    fn parallel_for_partitions_exactly(
        workers in 1usize..4,
        n in 0usize..5000,
        chunk in 1usize..600,
    ) {
        let p = pool(workers);
        let sum = AtomicU64::new(0);
        let stats = p.parallel_for("pf", 0..n, chunk, |i| {
            sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        prop_assert_eq!(stats.iterations, n as u64);
        let expect = (n as u64) * (n as u64 + 1) / 2;
        prop_assert_eq!(sum.load(Ordering::Relaxed), expect);
        prop_assert_eq!(stats.chunks, n.div_ceil(chunk));
    }

    #[test]
    fn reduce_matches_sequential_fold(
        workers in 1usize..3,
        n in 0usize..2000,
        chunk in 1usize..300,
    ) {
        let p = pool(workers);
        let got = p.parallel_reduce("pr", 0..n, chunk, 0u64, |i, acc| acc ^ (i as u64).wrapping_mul(31), |a, b| a ^ b);
        let want = (0..n).fold(0u64, |acc, i| acc ^ (i as u64).wrapping_mul(31));
        prop_assert_eq!(got, want);
    }
}

#[test]
fn deep_nesting_does_not_deadlock() {
    // Regression guard for the helping-join fix: single worker, four
    // levels of nested scopes.
    let p = pool(1);
    let count = AtomicU64::new(0);
    p.scope(|s0| {
        s0.spawn(|| {
            p.scope(|s1| {
                s1.spawn(|| {
                    p.scope(|s2| {
                        s2.spawn(|| {
                            p.scope(|s3| {
                                s3.spawn(|| {
                                    count.fetch_add(1, Ordering::Relaxed);
                                });
                            });
                        });
                    });
                });
            });
        });
    });
    assert_eq!(count.load(Ordering::Relaxed), 1);
}

#[test]
fn mixed_panics_under_throttle_still_quiesce() {
    let p = pool(3);
    p.thread_cap().set_cap(1);
    let ok = Arc::new(AtomicU64::new(0));
    for i in 0..100 {
        let ok = ok.clone();
        p.spawn_named("maybe_boom", move || {
            if i % 7 == 0 {
                panic!("boom");
            }
            ok.fetch_add(1, Ordering::Relaxed);
        });
    }
    p.wait_idle();
    assert_eq!(ok.load(Ordering::Relaxed), 100 - 15);
    assert_eq!(p.panics(), 15);
    // Raise the cap and confirm the pool is still healthy.
    p.thread_cap().set_cap(3);
    assert_eq!(p.spawn("health", || 9).join().unwrap(), 9);
}

#[test]
fn scope_is_an_observation_barrier() {
    // When scope() returns, every scoped task's events must be visible —
    // the completion-hook guarantee.
    let p = pool(3);
    for round in 0..50u64 {
        p.scope(|s| {
            for _ in 0..20 {
                s.spawn_named("barrier", || {});
            }
        });
        let prof = p.lg().profiles().get("barrier").unwrap();
        assert_eq!(prof.count, (round + 1) * 20, "events lagged scope exit");
        assert_eq!(prof.active, 0);
    }
}
