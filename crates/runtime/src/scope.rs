//! Structured fork-join scopes.
//!
//! `pool.scope(|s| { s.spawn_named("part", || ...); ... })` guarantees that
//! every task spawned on the scope finishes before `scope` returns, which
//! is what lets the closures borrow from the enclosing stack frame.
//!
//! ## Safety argument
//!
//! Scoped closures are `'scope`-bounded, but the pool stores `'static`
//! tasks; the lifetime is erased with a transmute. Soundness rests on the
//! completion barrier: `scope` does not return until the remaining-task
//! counter reaches zero *and* every body has finished running, so no
//! borrow outlives its referent. Panics inside scoped tasks are counted
//! and re-thrown from `scope` after the barrier (first panic wins),
//! matching `std::thread::scope` semantics.

use crate::pool::ThreadPool;
use crate::task::Task;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct ScopeState {
    remaining: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
    panicked: AtomicUsize,
}

/// Spawn surface handed to the `scope` closure.
pub struct Scope<'scope, 'pool> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope, '_> {
    /// Spawns a named task that may borrow from the enclosing scope.
    pub fn spawn_named<F>(&self, name: &str, body: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.remaining.fetch_add(1, Ordering::AcqRel);
        let panic_state = self.state.clone();
        let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
            if result.is_err() {
                panic_state.panicked.fetch_add(1, Ordering::AcqRel);
            }
        });
        // SAFETY: `scope()` blocks until `remaining == 0`; the counter is
        // decremented by the completion hook, which the worker runs only
        // after the body (and its borrows) has completed; see module docs.
        let wrapped: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(wrapped) };
        let done_state = self.state.clone();
        let completion: Box<dyn FnOnce() + Send + 'static> = Box::new(move || {
            if done_state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _g = done_state.lock.lock();
                done_state.cv.notify_all();
            }
        });
        let id = self.pool.lg().intern(name);
        self.pool
            .shared()
            .push(Task::with_completion(id, wrapped, completion));
    }

    /// Spawns with the default name `"scoped"`.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.spawn_named("scoped", body)
    }
}

impl ThreadPool {
    /// Runs `f` with a [`Scope`]; returns once every scoped task finished.
    ///
    /// # Panics
    /// Re-throws if any scoped task panicked (after all tasks completed).
    pub fn scope<'scope, R>(&self, f: impl FnOnce(&Scope<'scope, '_>) -> R) -> R {
        let state = Arc::new(ScopeState {
            remaining: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            panicked: AtomicUsize::new(0),
        });
        let scope = Scope {
            pool: self,
            state: state.clone(),
            _marker: std::marker::PhantomData,
        };
        let result = f(&scope);
        // Barrier: wait for all scoped tasks. If the creating thread is
        // itself a pool worker (nested scope, fork-join recursion), it
        // *helps* — running pending tasks instead of sleeping — so workers
        // blocked here can never deadlock the pool. External threads park
        // on the scope condvar.
        while state.remaining.load(Ordering::Acquire) != 0 {
            if self.shared().try_help() {
                continue;
            }
            let mut g = state.lock.lock();
            if state.remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            state
                .cv
                .wait_for(&mut g, std::time::Duration::from_millis(1));
        }
        let panics = state.panicked.load(Ordering::Acquire);
        if panics > 0 {
            panic!("{panics} scoped task(s) panicked");
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_core::LookingGlass;
    use std::sync::atomic::AtomicU64;

    fn pool(workers: usize) -> ThreadPool {
        let lg = LookingGlass::builder().build();
        ThreadPool::new(
            lg,
            crate::pool::PoolConfig {
                workers,
                spin_rounds: 4,
                register_knobs: false,
                faults: None,
            },
        )
    }

    #[test]
    fn scope_waits_for_all_tasks() {
        let p = pool(3);
        let count = AtomicU64::new(0);
        p.scope(|s| {
            for _ in 0..50 {
                s.spawn(|| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn scoped_tasks_borrow_stack_data() {
        let p = pool(2);
        let data: Vec<u64> = (0..1000).collect();
        let sum = AtomicU64::new(0);
        p.scope(|s| {
            for chunk in data.chunks(100) {
                let sum = &sum;
                s.spawn_named("chunk", move || {
                    sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn scope_returns_closure_value() {
        let p = pool(1);
        let v = p.scope(|_s| 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn empty_scope_returns_immediately() {
        let p = pool(1);
        p.scope(|_| {});
    }

    #[test]
    fn nested_scopes() {
        let p = pool(2);
        let count = AtomicU64::new(0);
        p.scope(|outer| {
            for _ in 0..4 {
                let count = &count;
                let p = &p;
                outer.spawn(move || {
                    p.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(move || {
                                count.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    #[should_panic(expected = "scoped task(s) panicked")]
    fn scope_rethrows_panics_after_barrier() {
        let p = pool(2);
        let completed = Arc::new(AtomicU64::new(0));
        let c = completed.clone();
        p.scope(move |s| {
            s.spawn(|| panic!("inner"));
            for _ in 0..10 {
                let c = c.clone();
                s.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    }

    #[test]
    fn sequential_scopes_reuse_pool() {
        let p = pool(2);
        for round in 0..5u64 {
            let count = AtomicU64::new(0);
            p.scope(|s| {
                for _ in 0..10 {
                    s.spawn(|| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(count.load(Ordering::Relaxed), 10, "round {round}");
        }
    }

    #[test]
    fn scoped_tasks_visible_in_profiles() {
        let p = pool(2);
        p.scope(|s| {
            for _ in 0..7 {
                s.spawn_named("scoped_work", || {});
            }
        });
        assert_eq!(p.lg().profiles().get("scoped_work").unwrap().count, 7);
    }
}
