//! Structured fork-join scopes.
//!
//! `pool.scope(|s| { s.spawn_named("part", || ...); ... })` guarantees that
//! every task spawned on the scope finishes before `scope` returns, which
//! is what lets the closures borrow from the enclosing stack frame.
//!
//! ## Safety argument
//!
//! Scoped closures are `'scope`-bounded, but the pool stores `'static`
//! tasks; the lifetime is erased with [`TaskBody::new_unchecked`].
//! Soundness rests on the completion barrier: every scoped task carries a
//! [`Completion`] that decrements the remaining-task counter when the
//! worker is done with the body (run *or* dropped unrun — the `Drop` impl
//! is the guard), and `scope` does not return until that counter reaches
//! zero, so no borrow outlives its referent.
//!
//! Scoped bodies are submitted **raw** — no wrapper closure — so a small
//! user capture stays within the inline budget and the steady-state spawn
//! performs no allocation. Panic accounting rides on the worker's own
//! `catch_unwind`: the worker passes the panic flag to
//! [`Completion::run`], the scope counts it, and `scope` re-throws after
//! the barrier (first panic wins), matching `std::thread::scope`
//! semantics. Scoped panics therefore also show up in
//! [`ThreadPool::panics`], like any other contained panic.

use crate::pool::ThreadPool;
use crate::task::{Task, TaskBody};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct ScopeState {
    remaining: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
    panicked: AtomicUsize,
}

/// A task's completion hook: one per task, run by the worker after the
/// `TaskEnd` event (or dropped with a discarded task). Concrete — not a
/// boxed closure — so attaching it to a task allocates nothing. Two
/// flavours: fork-join scopes decrement a barrier, DAG scopes also
/// release successor tasks (see [`crate::dag`]).
pub(crate) enum Completion {
    /// Decrements a [`ThreadPool::scope`] barrier.
    Scope(ScopeCompletion),
    /// Releases DAG successors, then decrements the DAG-scope barrier.
    Dag(crate::dag::DagCompletion),
}

impl Completion {
    /// Records the task's outcome. Consumes `self`; the structural work
    /// (barrier decrement, successor release) happens in `Drop`, so a
    /// completion that is never `run` (its task was discarded at
    /// shutdown) still releases the scope.
    pub(crate) fn run(self, panicked: bool) {
        match self {
            Completion::Scope(c) => c.run(panicked),
            Completion::Dag(c) => c.run(panicked),
        }
    }
}

/// The fork-join flavour: decrements the scope's remaining-task barrier.
pub(crate) struct ScopeCompletion {
    state: Arc<ScopeState>,
}

impl ScopeCompletion {
    fn run(self, panicked: bool) {
        if panicked {
            self.state.panicked.fetch_add(1, Ordering::AcqRel);
        }
    }
}

impl Drop for ScopeCompletion {
    fn drop(&mut self) {
        if self.state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.state.lock.lock();
            self.state.cv.notify_all();
        }
    }
}

/// Spawn surface handed to the `scope` closure.
pub struct Scope<'scope, 'pool> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope, '_> {
    fn completion(&self) -> Completion {
        self.state.remaining.fetch_add(1, Ordering::AcqRel);
        Completion::Scope(ScopeCompletion {
            state: self.state.clone(),
        })
    }

    /// Spawns a named task that may borrow from the enclosing scope.
    pub fn spawn_named<F>(&self, name: &str, body: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let completion = self.completion();
        let id = self.pool.lg().intern(name);
        // SAFETY: the scope barrier — `scope()` blocks until this task's
        // completion has dropped, and the completion drops only after the
        // worker is done with the body; see module docs.
        let body = unsafe { TaskBody::new_unchecked(body) };
        self.pool
            .shared()
            .push(Task::with_completion(id, body, completion));
    }

    /// Spawns with the default name `"scoped"`.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.spawn_named("scoped", body)
    }

    /// Spawns one task per `chunk`-sized slice of `range`, all sharing a
    /// single `Arc` of `body` — each task captures `(Arc, start, end)`,
    /// exactly the inline budget, so nothing is boxed per chunk. The whole
    /// chunk set enters the pool's injector in one batch push and wakes
    /// `min(chunks, idle)` workers in one wave. Returns the number of
    /// chunk tasks spawned.
    ///
    /// This is the engine under [`ThreadPool::parallel_for`]; use it
    /// directly to mix batch work with other scoped tasks.
    ///
    /// # Panics
    /// Panics if `chunk` is zero.
    pub fn spawn_batch<F>(
        &self,
        name: &str,
        range: std::ops::Range<usize>,
        chunk: usize,
        body: F,
    ) -> usize
    where
        F: Fn(usize, usize) + Send + Sync + 'scope,
    {
        assert!(chunk > 0, "chunk size must be positive");
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return 0;
        }
        let chunks = len.div_ceil(chunk);
        let id = self.pool.lg().intern(name);
        let shared_body = Arc::new(body);
        let mut tasks = Vec::with_capacity(chunks);
        let mut start = range.start;
        while start < range.end {
            let end = (start + chunk).min(range.end);
            let b = shared_body.clone();
            // SAFETY: same scope-barrier argument as `spawn_named`; the
            // `Arc<F>` clones all drop before `scope()` returns.
            let body = unsafe { TaskBody::new_unchecked(move || b(start, end)) };
            tasks.push(Task::with_completion(id, body, self.completion()));
            start = end;
        }
        self.pool.shared().push_batch(tasks);
        chunks
    }
}

impl ThreadPool {
    /// Runs `f` with a [`Scope`]; returns once every scoped task finished.
    ///
    /// # Panics
    /// Re-throws if any scoped task panicked (after all tasks completed).
    pub fn scope<'scope, R>(&self, f: impl FnOnce(&Scope<'scope, '_>) -> R) -> R {
        let state = Arc::new(ScopeState {
            remaining: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            panicked: AtomicUsize::new(0),
        });
        let scope = Scope {
            pool: self,
            state: state.clone(),
            _marker: std::marker::PhantomData,
        };
        let result = f(&scope);
        // Barrier: wait for all scoped tasks. If the creating thread is
        // itself a pool worker (nested scope, fork-join recursion), it
        // *helps* — running pending tasks instead of sleeping — so workers
        // blocked here can never deadlock the pool. External threads park
        // on the scope condvar.
        while state.remaining.load(Ordering::Acquire) != 0 {
            if self.shared().try_help() {
                continue;
            }
            let mut g = state.lock.lock();
            if state.remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            state
                .cv
                .wait_for(&mut g, std::time::Duration::from_millis(1));
        }
        let panics = state.panicked.load(Ordering::Acquire);
        if panics > 0 {
            panic!("{panics} scoped task(s) panicked");
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_core::LookingGlass;
    use std::sync::atomic::AtomicU64;

    fn pool(workers: usize) -> ThreadPool {
        let lg = LookingGlass::builder().build();
        ThreadPool::new(
            lg,
            crate::pool::PoolConfig {
                workers,
                spin_rounds: 4,
                register_knobs: false,
                faults: None,
            },
        )
    }

    #[test]
    fn scope_waits_for_all_tasks() {
        let p = pool(3);
        let count = AtomicU64::new(0);
        p.scope(|s| {
            for _ in 0..50 {
                s.spawn(|| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn scoped_tasks_borrow_stack_data() {
        let p = pool(2);
        let data: Vec<u64> = (0..1000).collect();
        let sum = AtomicU64::new(0);
        p.scope(|s| {
            for chunk in data.chunks(100) {
                let sum = &sum;
                s.spawn_named("chunk", move || {
                    sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn scoped_small_closures_stay_inline() {
        let p = pool(2);
        let count = AtomicU64::new(0);
        p.scope(|s| {
            for _ in 0..20 {
                let count = &count;
                s.spawn(move || {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 20);
        // No wrapper closure: a one-reference capture is inline.
        assert_eq!(p.counters().counter("rt.inline_tasks").get(), 20);
        assert_eq!(p.counters().counter("rt.boxed_tasks").get(), 0);
    }

    #[test]
    fn scope_returns_closure_value() {
        let p = pool(1);
        let v = p.scope(|_s| 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn empty_scope_returns_immediately() {
        let p = pool(1);
        p.scope(|_| {});
    }

    #[test]
    fn nested_scopes() {
        let p = pool(2);
        let count = AtomicU64::new(0);
        p.scope(|outer| {
            for _ in 0..4 {
                let count = &count;
                let p = &p;
                outer.spawn(move || {
                    p.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(move || {
                                count.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn scope_spawn_batch_covers_range() {
        let p = pool(2);
        let hits: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
        let chunks = p.scope(|s| {
            s.spawn_batch("batch", 0..hits.len(), 32, |start, end| {
                for h in &hits[start..end] {
                    h.fetch_add(1, Ordering::Relaxed);
                }
            })
        });
        assert_eq!(chunks, 500usize.div_ceil(32));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
        assert_eq!(p.counters().counter("rt.batch_spawns").get(), 1);
        assert_eq!(
            p.counters().counter("rt.inline_tasks").get() as usize,
            chunks
        );
    }

    #[test]
    fn scope_spawn_batch_empty_range() {
        let p = pool(1);
        assert_eq!(p.scope(|s| s.spawn_batch("none", 3..3, 4, |_, _| {})), 0);
    }

    #[test]
    fn scope_spawn_batch_mixes_with_scoped_tasks() {
        let p = pool(2);
        let batch_sum = AtomicU64::new(0);
        let solo = AtomicU64::new(0);
        p.scope(|s| {
            s.spawn(|| {
                solo.fetch_add(1, Ordering::Relaxed);
            });
            s.spawn_batch("b", 0..100, 7, |start, end| {
                batch_sum.fetch_add((start..end).map(|i| i as u64).sum(), Ordering::Relaxed);
            });
        });
        assert_eq!(solo.load(Ordering::Relaxed), 1);
        assert_eq!(batch_sum.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    #[should_panic(expected = "scoped task(s) panicked")]
    fn scope_rethrows_panics_after_barrier() {
        let p = pool(2);
        let completed = Arc::new(AtomicU64::new(0));
        let c = completed.clone();
        p.scope(move |s| {
            s.spawn(|| panic!("inner"));
            for _ in 0..10 {
                let c = c.clone();
                s.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    }

    #[test]
    fn scoped_panics_count_in_pool_panics() {
        let p = pool(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.scope(|s| s.spawn(|| panic!("inner")));
        }));
        assert!(result.is_err());
        p.wait_idle();
        assert_eq!(p.panics(), 1);
    }

    #[test]
    fn sequential_scopes_reuse_pool() {
        let p = pool(2);
        for round in 0..5u64 {
            let count = AtomicU64::new(0);
            p.scope(|s| {
                for _ in 0..10 {
                    s.spawn(|| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(count.load(Ordering::Relaxed), 10, "round {round}");
        }
    }

    #[test]
    fn scoped_tasks_visible_in_profiles() {
        let p = pool(2);
        p.scope(|s| {
            for _ in 0..7 {
                s.spawn_named("scoped_work", || {});
            }
        });
        assert_eq!(p.lg().profiles().get("scoped_work").unwrap().count, 7);
    }
}
