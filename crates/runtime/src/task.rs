//! Tasks, inline closure storage, and join handles.
//!
//! A task is a named closure. Naming is what connects scheduling to
//! observation: the profiler aggregates by task name, and granularity
//! policies reason about per-name mean durations.
//!
//! ## Zero-allocation bodies
//!
//! The old representation boxed every closure (`Box<dyn FnOnce>`), which
//! put one allocator round-trip on every spawn — exactly the per-task α
//! cost the granularity experiments try to isolate. [`TaskBody`] instead
//! stores the closure **in place** when it fits [`INLINE_BODY_BYTES`]
//! (three pointers — enough for the `(Arc<body>, start, end)` triple a
//! `parallel_for` chunk captures, or a small user capture plus a join
//! sender). Closures that exceed the inline budget but fit a fixed slab
//! block are allocated from a per-thread freelist that recycles blocks
//! instead of hitting the global allocator; only closures larger than
//! [`slab::BLOCK_BYTES`] fall back to a true `Box`. The representation is
//! observable: the pool counts `rt.inline_tasks` / `rt.boxed_tasks` per
//! spawn so the fast path can be verified through the glass.

use lg_core::TaskId;
use parking_lot::{Condvar, Mutex};
use std::mem::{ManuallyDrop, MaybeUninit};
use std::ptr;
use std::sync::Arc;

/// Words of inline closure storage in a task record (3 pointers).
const INLINE_WORDS: usize = 3;

/// Inline closure budget in bytes: closures up to this size (and at most
/// word-aligned) are stored in the task record itself — no allocation.
pub const INLINE_BODY_BYTES: usize = INLINE_WORDS * std::mem::size_of::<usize>();

/// Where a [`TaskBody`]'s closure lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BodyKind {
    /// In place, inside the task record. The steady-state fast path.
    Inline,
    /// In a fixed-size block from the per-thread recycling slab.
    Slab,
    /// In a plain `Box` (oversized or over-aligned closures).
    Boxed,
}

/// Per-closure dispatch table. `call` consumes the stored closure (the
/// storage is dead afterwards); `drop` destroys it without calling.
struct BodyVTable {
    call: unsafe fn(*mut MaybeUninit<usize>),
    drop: unsafe fn(*mut MaybeUninit<usize>),
    kind: BodyKind,
}

/// # Safety
/// `p` must point at storage holding a live `F` written by
/// [`TaskBody::new_unchecked`]; the closure is moved out, so the storage
/// must not be read again.
unsafe fn call_inline<F: FnOnce()>(p: *mut MaybeUninit<usize>) {
    let f: F = unsafe { ptr::read(p.cast::<F>()) };
    f();
}

/// # Safety
/// Same storage contract as [`call_inline`]; drops `F` in place.
unsafe fn drop_inline<F>(p: *mut MaybeUninit<usize>) {
    unsafe { ptr::drop_in_place(p.cast::<F>()) };
}

/// # Safety
/// Word 0 of `p` must hold a slab block pointer with a live `F` inside.
unsafe fn call_slab<F: FnOnce()>(p: *mut MaybeUninit<usize>) {
    let block = unsafe { (*p).assume_init() } as *mut u8;
    // Move the closure out and recycle the block *before* the call, so a
    // body that respawns can reuse its own block immediately.
    let f: F = unsafe { ptr::read(block.cast::<F>()) };
    unsafe { slab::free(block) };
    f();
}

/// # Safety
/// Same storage contract as [`call_slab`].
unsafe fn drop_slab<F>(p: *mut MaybeUninit<usize>) {
    let block = unsafe { (*p).assume_init() } as *mut u8;
    unsafe {
        ptr::drop_in_place(block.cast::<F>());
        slab::free(block);
    }
}

/// # Safety
/// Word 0 of `p` must hold a `Box::into_raw` pointer to a live `F`.
unsafe fn call_boxed<F: FnOnce()>(p: *mut MaybeUninit<usize>) {
    let raw = unsafe { (*p).assume_init() } as *mut F;
    let f = unsafe { Box::from_raw(raw) };
    f();
}

/// # Safety
/// Same storage contract as [`call_boxed`].
unsafe fn drop_boxed<F>(p: *mut MaybeUninit<usize>) {
    let raw = unsafe { (*p).assume_init() } as *mut F;
    drop(unsafe { Box::from_raw(raw) });
}

struct InlineVt<F>(std::marker::PhantomData<F>);
impl<F: FnOnce()> InlineVt<F> {
    const VTABLE: BodyVTable = BodyVTable {
        call: call_inline::<F>,
        drop: drop_inline::<F>,
        kind: BodyKind::Inline,
    };
}

struct SlabVt<F>(std::marker::PhantomData<F>);
impl<F: FnOnce()> SlabVt<F> {
    const VTABLE: BodyVTable = BodyVTable {
        call: call_slab::<F>,
        drop: drop_slab::<F>,
        kind: BodyKind::Slab,
    };
}

struct BoxVt<F>(std::marker::PhantomData<F>);
impl<F: FnOnce()> BoxVt<F> {
    const VTABLE: BodyVTable = BodyVTable {
        call: call_boxed::<F>,
        drop: drop_boxed::<F>,
        kind: BodyKind::Boxed,
    };
}

/// A type-erased `FnOnce()` with inline small-closure storage.
///
/// Three storage tiers (see module docs): inline, slab block, `Box`. The
/// tier is chosen at construction from `size_of::<F>`/`align_of::<F>`,
/// which are compile-time constants, so the branch vanishes per call
/// site.
pub(crate) struct TaskBody {
    data: [MaybeUninit<usize>; INLINE_WORDS],
    vtable: &'static BodyVTable,
}

// SAFETY: constructors require `F: Send`, and the erased closure is the
// only thing the storage holds.
unsafe impl Send for TaskBody {}

impl TaskBody {
    /// Wraps a `'static` closure.
    pub(crate) fn new<F: FnOnce() + Send + 'static>(f: F) -> Self {
        // SAFETY: `F: 'static` — there are no borrows to outlive.
        unsafe { Self::new_unchecked(f) }
    }

    /// Wraps a closure without a `'static` bound.
    ///
    /// # Safety
    /// The caller must guarantee everything `f` borrows stays alive until
    /// the body has been invoked or dropped — the scope-barrier argument
    /// (see [`crate::scope`]).
    pub(crate) unsafe fn new_unchecked<F: FnOnce() + Send>(f: F) -> Self {
        let mut data = [MaybeUninit::<usize>::uninit(); INLINE_WORDS];
        let size = std::mem::size_of::<F>();
        let align = std::mem::align_of::<F>();
        if size <= INLINE_BODY_BYTES && align <= std::mem::align_of::<usize>() {
            // SAFETY: the closure fits the storage's size and alignment.
            unsafe { ptr::write(data.as_mut_ptr().cast::<F>(), f) };
            Self {
                data,
                vtable: &InlineVt::<F>::VTABLE,
            }
        } else if size <= slab::BLOCK_BYTES && align <= slab::BLOCK_ALIGN {
            let block = slab::alloc();
            // SAFETY: the block satisfies `F`'s size and alignment.
            unsafe { ptr::write(block.cast::<F>(), f) };
            data[0] = MaybeUninit::new(block as usize);
            Self {
                data,
                vtable: &SlabVt::<F>::VTABLE,
            }
        } else {
            data[0] = MaybeUninit::new(Box::into_raw(Box::new(f)) as usize);
            Self {
                data,
                vtable: &BoxVt::<F>::VTABLE,
            }
        }
    }

    /// Where this body's closure lives.
    pub(crate) fn kind(&self) -> BodyKind {
        self.vtable.kind
    }

    /// Runs the closure, consuming the body.
    pub(crate) fn invoke(self) {
        let mut this = ManuallyDrop::new(self);
        // SAFETY: `self` was built by a constructor; `ManuallyDrop`
        // prevents the destructor from double-dropping the moved closure.
        unsafe { (this.vtable.call)(this.data.as_mut_ptr()) }
    }
}

impl Drop for TaskBody {
    fn drop(&mut self) {
        // Dropping without invoking (discarded at shutdown, or replaced by
        // an injected fault): destroy the closure so captured state — e.g.
        // a `JoinSender` whose drop guard resolves its handle — is
        // released.
        // SAFETY: `invoke` shields itself with `ManuallyDrop`, so a live
        // closure is still stored here.
        unsafe { (self.vtable.drop)(self.data.as_mut_ptr()) }
    }
}

pub(crate) mod slab {
    //! Per-thread freelist of fixed-size closure blocks.
    //!
    //! Oversized-but-bounded closures draw a 64-byte block from the
    //! calling thread's freelist and return it to the freeing thread's
    //! freelist, so a steady producer/consumer pair recycles blocks
    //! without touching the global allocator. Blocks are layout-identical,
    //! which is what makes cross-thread recycling safe: any freed block
    //! can serve any later allocation.

    use std::alloc::{alloc as global_alloc, dealloc, handle_alloc_error, Layout};
    use std::cell::RefCell;

    /// Slab block size: covers a captured closure of up to 8 words.
    pub(crate) const BLOCK_BYTES: usize = 64;
    /// Slab block alignment (covers 16-byte-aligned captures).
    pub(crate) const BLOCK_ALIGN: usize = 16;
    /// Blocks retained per thread before falling back to `dealloc`.
    const FREELIST_CAP: usize = 64;

    const LAYOUT: Layout = match Layout::from_size_align(BLOCK_BYTES, BLOCK_ALIGN) {
        Ok(l) => l,
        Err(_) => panic!("invalid slab layout"),
    };

    struct Freelist(Vec<*mut u8>);

    impl Drop for Freelist {
        fn drop(&mut self) {
            for p in self.0.drain(..) {
                // SAFETY: every pointer in the list came from `alloc(LAYOUT)`.
                unsafe { dealloc(p, LAYOUT) };
            }
        }
    }

    thread_local! {
        static FREE: RefCell<Freelist> = const { RefCell::new(Freelist(Vec::new())) };
    }

    /// Hands out a block, recycled if one is available.
    pub(crate) fn alloc() -> *mut u8 {
        let recycled = FREE.try_with(|f| f.borrow_mut().0.pop()).ok().flatten();
        recycled.unwrap_or_else(|| {
            // SAFETY: LAYOUT has non-zero size.
            let p = unsafe { global_alloc(LAYOUT) };
            if p.is_null() {
                handle_alloc_error(LAYOUT);
            }
            p
        })
    }

    /// Returns a block to the calling thread's freelist (or the global
    /// allocator when the list is full or thread-locals are gone).
    ///
    /// # Safety
    /// `p` must have come from [`alloc`] and not been freed since.
    pub(crate) unsafe fn free(p: *mut u8) {
        let kept = FREE
            .try_with(|f| {
                let mut f = f.borrow_mut();
                if f.0.len() < FREELIST_CAP {
                    f.0.push(p);
                    true
                } else {
                    false
                }
            })
            .unwrap_or(false);
        if !kept {
            // SAFETY: caller contract.
            unsafe { dealloc(p, LAYOUT) };
        }
    }
}

/// A unit of work owned by the pool.
pub(crate) struct Task {
    pub(crate) name: TaskId,
    pub(crate) body: TaskBody,
    /// Invoked by the worker *after* the task's `TaskEnd` event has been
    /// emitted (and regardless of panics). Scopes use this as their
    /// completion barrier, which makes `scope()` an observation barrier
    /// too: when it returns, every scoped task's events are visible.
    pub(crate) completion: Option<crate::scope::Completion>,
}

impl Task {
    pub(crate) fn new(name: TaskId, body: TaskBody) -> Self {
        Self {
            name,
            body,
            completion: None,
        }
    }

    pub(crate) fn with_completion(
        name: TaskId,
        body: TaskBody,
        completion: crate::scope::Completion,
    ) -> Self {
        Self {
            name,
            body,
            completion: Some(completion),
        }
    }
}

enum SlotState<T> {
    Empty,
    Value(T),
    Panicked,
    Taken,
}

struct Slot<T> {
    state: Mutex<SlotState<T>>,
    cv: Condvar,
}

/// Handle to a spawned task's result.
///
/// [`JoinHandle::join`] blocks until the task finishes; if the task body
/// panicked, `join` returns `Err` with a descriptive message rather than
/// poisoning the pool. A handle created by [`crate::ThreadPool::spawn`]
/// carries a reference back to the pool so that a *worker* joining from
/// inside a task helps run pending work (including its own LIFO-slot
/// child) instead of sleeping on it.
pub struct JoinHandle<T> {
    slot: Arc<Slot<T>>,
    pool: Option<Arc<crate::pool::PoolShared>>,
}

/// The producer side, held by the task body wrapper.
pub(crate) struct JoinSender<T> {
    slot: Arc<Slot<T>>,
}

/// Creates a connected join pair.
pub(crate) fn join_pair<T>() -> (JoinSender<T>, JoinHandle<T>) {
    let slot = Arc::new(Slot {
        state: Mutex::new(SlotState::Empty),
        cv: Condvar::new(),
    });
    (
        JoinSender { slot: slot.clone() },
        JoinHandle { slot, pool: None },
    )
}

impl<T> JoinSender<T> {
    pub(crate) fn send(self, value: T) {
        let mut s = self.slot.state.lock();
        *s = SlotState::Value(value);
        self.slot.cv.notify_all();
    }

    pub(crate) fn send_panicked(self) {
        let mut s = self.slot.state.lock();
        *s = SlotState::Panicked;
        self.slot.cv.notify_all();
    }
}

impl<T> Drop for JoinSender<T> {
    /// A sender dropped without sending means the task body never ran to
    /// a result — it was discarded at shutdown or replaced by an injected
    /// fault. Resolve the handle as panicked so `join` reports an error
    /// instead of blocking forever.
    fn drop(&mut self) {
        let mut s = self.slot.state.lock();
        if matches!(*s, SlotState::Empty) {
            *s = SlotState::Panicked;
            self.slot.cv.notify_all();
        }
    }
}

impl<T> JoinHandle<T> {
    /// Attaches the owning pool so `join` from a worker thread helps run
    /// queued tasks instead of blocking the worker.
    pub(crate) fn with_helper(mut self, pool: Arc<crate::pool::PoolShared>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Blocks until the task completes. `Err` if the task panicked.
    pub fn join(self) -> Result<T, JoinError> {
        // Helping applies only when the joining thread is a worker of the
        // attached pool: it runs pending tasks while it waits (its own
        // LIFO-slot child is found first), so joining from inside a task
        // can never strand the awaited work behind the join itself. Any
        // other thread sleeps on the slot condvar — an untimed wait is
        // safe because the sender's drop guard always resolves the slot.
        let helper = self
            .pool
            .as_ref()
            .filter(|p| p.is_current_worker())
            .cloned();
        loop {
            {
                let mut s = self.slot.state.lock();
                match std::mem::replace(&mut *s, SlotState::Taken) {
                    SlotState::Value(v) => return Ok(v),
                    SlotState::Panicked => return Err(JoinError::Panicked),
                    SlotState::Taken => unreachable!("join consumed twice"),
                    SlotState::Empty => {
                        *s = SlotState::Empty;
                        let Some(_) = &helper else {
                            self.slot.cv.wait(&mut s);
                            continue;
                        };
                        // Fall through (guard released) to the helping path.
                    }
                }
            }
            let pool = helper.as_ref().expect("checked above");
            if !pool.try_help() {
                let mut s = self.slot.state.lock();
                if matches!(*s, SlotState::Empty) {
                    self.slot
                        .cv
                        .wait_for(&mut s, std::time::Duration::from_micros(500));
                }
            }
        }
    }

    /// Non-blocking poll: `Some(result)` if finished.
    pub fn try_join(&mut self) -> Option<Result<T, JoinError>> {
        let mut s = self.slot.state.lock();
        match std::mem::replace(&mut *s, SlotState::Taken) {
            SlotState::Value(v) => Some(Ok(v)),
            SlotState::Panicked => Some(Err(JoinError::Panicked)),
            SlotState::Taken => None,
            SlotState::Empty => {
                *s = SlotState::Empty;
                None
            }
        }
    }

    /// True once the task has finished (without consuming the result).
    pub fn is_finished(&self) -> bool {
        matches!(
            *self.slot.state.lock(),
            SlotState::Value(_) | SlotState::Panicked
        )
    }
}

/// Why a join failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinError {
    /// The task body panicked; the panic was contained by the worker.
    Panicked,
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::Panicked => write!(f, "task panicked"),
        }
    }
}

impl std::error::Error for JoinError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn join_receives_value() {
        let (tx, rx) = join_pair::<i32>();
        std::thread::spawn(move || tx.send(42));
        assert_eq!(rx.join().unwrap(), 42);
    }

    #[test]
    fn join_blocks_until_send() {
        let (tx, rx) = join_pair::<&str>();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send("late");
        });
        assert_eq!(rx.join().unwrap(), "late");
        t.join().unwrap();
    }

    #[test]
    fn panicked_task_reports_error() {
        let (tx, rx) = join_pair::<()>();
        tx.send_panicked();
        assert_eq!(rx.join().unwrap_err(), JoinError::Panicked);
    }

    #[test]
    fn try_join_polls() {
        let (tx, mut rx) = join_pair::<u8>();
        assert!(rx.try_join().is_none());
        assert!(!rx.is_finished());
        tx.send(7);
        assert!(rx.is_finished());
        assert_eq!(rx.try_join().unwrap().unwrap(), 7);
        assert!(rx.try_join().is_none(), "result consumed");
    }

    #[test]
    fn dropped_sender_resolves_as_panicked() {
        let (tx, rx) = join_pair::<u32>();
        drop(tx);
        assert_eq!(rx.join().unwrap_err(), JoinError::Panicked);
    }

    #[test]
    fn join_error_displays() {
        assert_eq!(JoinError::Panicked.to_string(), "task panicked");
    }

    #[test]
    fn small_closure_is_inline() {
        let hit = Arc::new(AtomicU64::new(0));
        let h = hit.clone();
        // One Arc (8 bytes) fits the 24-byte inline budget.
        let body = TaskBody::new(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(body.kind(), BodyKind::Inline);
        body.invoke();
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn three_word_closure_is_inline() {
        let hit = Arc::new(AtomicU64::new(0));
        let h = hit.clone();
        let (a, b) = (3u64, 4u64);
        let body = TaskBody::new(move || {
            h.fetch_add(a + b, Ordering::Relaxed);
        });
        assert_eq!(body.kind(), BodyKind::Inline);
        body.invoke();
        assert_eq!(hit.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn medium_closure_uses_slab() {
        let hit = Arc::new(AtomicU64::new(0));
        let h = hit.clone();
        let pad = [1u64, 2, 3, 4];
        let body = TaskBody::new(move || {
            h.fetch_add(pad.iter().sum::<u64>(), Ordering::Relaxed);
        });
        assert_eq!(body.kind(), BodyKind::Slab);
        body.invoke();
        assert_eq!(hit.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn slab_blocks_recycle() {
        // Allocate-run cycles on one thread reuse the same block.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..32 {
            let pad = [0u64; 6];
            let body = TaskBody::new(move || {
                std::hint::black_box(pad);
            });
            assert_eq!(body.kind(), BodyKind::Slab);
            // Record the block address via the stored word.
            let addr = unsafe { body.data[0].assume_init() };
            seen.insert(addr);
            body.invoke();
        }
        assert!(
            seen.len() < 32,
            "freelist never recycled a block: {} distinct",
            seen.len()
        );
    }

    #[test]
    fn huge_closure_is_boxed() {
        let big = [7u8; 256];
        let body = TaskBody::new(move || {
            std::hint::black_box(big);
        });
        assert_eq!(body.kind(), BodyKind::Boxed);
        body.invoke();
    }

    #[test]
    fn dropping_uninvoked_body_releases_captures() {
        for pad_words in [0usize, 5, 40] {
            let guard = Arc::new(());
            let g = guard.clone();
            let pad = vec![0u64; pad_words];
            let body = TaskBody::new(move || {
                let _ = (&g, &pad);
            });
            drop(body);
            assert_eq!(Arc::strong_count(&guard), 1, "pad {pad_words}");
        }
    }
}
