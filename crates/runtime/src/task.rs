//! Tasks and join handles.
//!
//! A task is a named boxed closure. Naming is what connects scheduling to
//! observation: the profiler aggregates by task name, and granularity
//! policies reason about per-name mean durations.

use lg_core::TaskId;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// A unit of work owned by the pool.
pub(crate) struct Task {
    pub(crate) name: TaskId,
    pub(crate) body: Box<dyn FnOnce() + Send + 'static>,
    /// Invoked by the worker *after* the task's `TaskEnd` event has been
    /// emitted (and regardless of panics). Scopes use this as their
    /// completion barrier, which makes `scope()` an observation barrier
    /// too: when it returns, every scoped task's events are visible.
    pub(crate) completion: Option<Box<dyn FnOnce() + Send + 'static>>,
}

impl Task {
    pub(crate) fn new(name: TaskId, body: Box<dyn FnOnce() + Send + 'static>) -> Self {
        Self {
            name,
            body,
            completion: None,
        }
    }

    pub(crate) fn with_completion(
        name: TaskId,
        body: Box<dyn FnOnce() + Send + 'static>,
        completion: Box<dyn FnOnce() + Send + 'static>,
    ) -> Self {
        Self {
            name,
            body,
            completion: Some(completion),
        }
    }
}

enum SlotState<T> {
    Empty,
    Value(T),
    Panicked,
    Taken,
}

struct Slot<T> {
    state: Mutex<SlotState<T>>,
    cv: Condvar,
}

/// Handle to a spawned task's result.
///
/// [`JoinHandle::join`] blocks until the task finishes; if the task body
/// panicked, `join` returns `Err` with a descriptive message rather than
/// poisoning the pool.
pub struct JoinHandle<T> {
    slot: Arc<Slot<T>>,
}

/// The producer side, held by the task body wrapper.
pub(crate) struct JoinSender<T> {
    slot: Arc<Slot<T>>,
}

/// Creates a connected join pair.
pub(crate) fn join_pair<T>() -> (JoinSender<T>, JoinHandle<T>) {
    let slot = Arc::new(Slot {
        state: Mutex::new(SlotState::Empty),
        cv: Condvar::new(),
    });
    (JoinSender { slot: slot.clone() }, JoinHandle { slot })
}

impl<T> JoinSender<T> {
    pub(crate) fn send(self, value: T) {
        let mut s = self.slot.state.lock();
        *s = SlotState::Value(value);
        self.slot.cv.notify_all();
    }

    pub(crate) fn send_panicked(self) {
        let mut s = self.slot.state.lock();
        *s = SlotState::Panicked;
        self.slot.cv.notify_all();
    }
}

impl<T> Drop for JoinSender<T> {
    /// A sender dropped without sending means the task body never ran to
    /// a result — it was discarded at shutdown or replaced by an injected
    /// fault. Resolve the handle as panicked so `join` reports an error
    /// instead of blocking forever.
    fn drop(&mut self) {
        let mut s = self.slot.state.lock();
        if matches!(*s, SlotState::Empty) {
            *s = SlotState::Panicked;
            self.slot.cv.notify_all();
        }
    }
}

impl<T> JoinHandle<T> {
    /// Blocks until the task completes. `Err` if the task panicked.
    pub fn join(self) -> Result<T, JoinError> {
        let mut s = self.slot.state.lock();
        loop {
            match std::mem::replace(&mut *s, SlotState::Taken) {
                SlotState::Value(v) => return Ok(v),
                SlotState::Panicked => return Err(JoinError::Panicked),
                SlotState::Taken => unreachable!("join consumed twice"),
                SlotState::Empty => {
                    *s = SlotState::Empty;
                    self.slot.cv.wait(&mut s);
                }
            }
        }
    }

    /// Non-blocking poll: `Some(result)` if finished.
    pub fn try_join(&mut self) -> Option<Result<T, JoinError>> {
        let mut s = self.slot.state.lock();
        match std::mem::replace(&mut *s, SlotState::Taken) {
            SlotState::Value(v) => Some(Ok(v)),
            SlotState::Panicked => Some(Err(JoinError::Panicked)),
            SlotState::Taken => None,
            SlotState::Empty => {
                *s = SlotState::Empty;
                None
            }
        }
    }

    /// True once the task has finished (without consuming the result).
    pub fn is_finished(&self) -> bool {
        matches!(
            *self.slot.state.lock(),
            SlotState::Value(_) | SlotState::Panicked
        )
    }
}

/// Why a join failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinError {
    /// The task body panicked; the panic was contained by the worker.
    Panicked,
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::Panicked => write!(f, "task panicked"),
        }
    }
}

impl std::error::Error for JoinError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_receives_value() {
        let (tx, rx) = join_pair::<i32>();
        std::thread::spawn(move || tx.send(42));
        assert_eq!(rx.join().unwrap(), 42);
    }

    #[test]
    fn join_blocks_until_send() {
        let (tx, rx) = join_pair::<&str>();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send("late");
        });
        assert_eq!(rx.join().unwrap(), "late");
        t.join().unwrap();
    }

    #[test]
    fn panicked_task_reports_error() {
        let (tx, rx) = join_pair::<()>();
        tx.send_panicked();
        assert_eq!(rx.join().unwrap_err(), JoinError::Panicked);
    }

    #[test]
    fn try_join_polls() {
        let (tx, mut rx) = join_pair::<u8>();
        assert!(rx.try_join().is_none());
        assert!(!rx.is_finished());
        tx.send(7);
        assert!(rx.is_finished());
        assert_eq!(rx.try_join().unwrap().unwrap(), 7);
        assert!(rx.try_join().is_none(), "result consumed");
    }

    #[test]
    fn dropped_sender_resolves_as_panicked() {
        let (tx, rx) = join_pair::<u32>();
        drop(tx);
        assert_eq!(rx.join().unwrap_err(), JoinError::Panicked);
    }

    #[test]
    fn join_error_displays() {
        assert_eq!(JoinError::Panicked.to_string(), "task panicked");
    }
}
