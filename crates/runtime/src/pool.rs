//! The work-stealing thread pool.
//!
//! Classic three-level scheduling (the rayon/HPX shape):
//!
//! 1. **Local deque** — each worker owns a Chase–Lev deque; tasks spawned
//!    *from* a worker go there (LIFO pop for locality).
//! 2. **Global injector** — tasks spawned from outside land in an MPMC
//!    injector; workers batch-steal from it.
//! 3. **Stealing** — an idle worker scans the other workers' deques
//!    (FIFO steal) starting from a per-worker rotation point.
//!
//! Idle workers spin through a bounded number of search rounds, then park
//! on a condvar; every `spawn` notifies one parked worker. Throttled
//! workers (index ≥ cap) park in [`crate::throttle::ThreadCap`] instead,
//! and re-enter the search loop when the cap rises.
//!
//! Task bodies run under `catch_unwind`: a panicking task increments a
//! counter and (for [`ThreadPool::spawn`]) surfaces through the
//! [`JoinHandle`]; it never takes a worker down.
//!
//! With a [`FaultConfig`] set, submitted tasks may be adversarially
//! crashed or delayed (see [`crate::fault`]) — the substrate for
//! resilience experiments.

use crate::fault::{FaultConfig, FaultState, TaskFault};
use crate::task::{join_pair, JoinHandle, Task};
use crate::throttle::ThreadCap;
use crossbeam::deque::{Injector, Stealer, Worker as Deque};
use lg_core::{Event, LookingGlass};
use lg_metrics::{CounterHandle, CounterRegistry};
use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Pool configuration.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Spin rounds through the full search before parking.
    pub spin_rounds: usize,
    /// Register the pool's `thread_cap` knob on the instance's registry.
    pub register_knobs: bool,
    /// Injected task faults (crash/straggler), for resilience testing.
    pub faults: Option<FaultConfig>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            spin_rounds: 16,
            register_knobs: true,
            faults: None,
        }
    }
}

impl PoolConfig {
    /// Config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers,
            ..Default::default()
        }
    }
}

thread_local! {
    /// (pool id, worker index, pointer to the worker's local deque).
    ///
    /// The pointer is only dereferenced by the owning thread while the
    /// worker loop is alive; it is cleared before the loop exits.
    static CURRENT_WORKER: Cell<Option<(usize, usize, *const Deque<Task>)>> =
        const { Cell::new(None) };
}

static POOL_IDS: AtomicUsize = AtomicUsize::new(1);

pub(crate) struct PoolShared {
    pub(crate) id: usize,
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    lg: Arc<LookingGlass>,
    cap: ThreadCap,
    shutdown: AtomicBool,
    /// Tasks submitted and not yet finished (for `wait_idle`).
    pending: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    /// Waiters blocked in `wait_idle`.
    idle_waiters_lock: Mutex<()>,
    idle_waiters_cv: Condvar,
    panics: AtomicUsize,
    faults: Option<FaultState>,
    c_spawned: CounterHandle,
    c_executed: CounterHandle,
    c_steals: CounterHandle,
    c_parks: CounterHandle,
    c_injected_panics: CounterHandle,
    c_injected_stragglers: CounterHandle,
}

/// The work-stealing thread pool. Dropping it drains nothing: it signals
/// shutdown, wakes everyone, and joins the workers (pending tasks that
/// were not yet started are dropped).
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    counters: Arc<CounterRegistry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool attached to a `LookingGlass` instance.
    ///
    /// # Panics
    /// Panics if `config.workers` is zero.
    pub fn new(lg: Arc<LookingGlass>, config: PoolConfig) -> Self {
        assert!(config.workers > 0, "pool needs at least one worker");
        let counters = Arc::new(CounterRegistry::new());
        let deques: Vec<Deque<Task>> = (0..config.workers).map(|_| Deque::new_fifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let cap = ThreadCap::new(config.workers);
        if config.register_knobs {
            lg.knobs().register(Arc::new(cap.clone()));
        }
        let shared = Arc::new(PoolShared {
            id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            injector: Injector::new(),
            stealers,
            lg,
            cap,
            shutdown: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            idle_waiters_lock: Mutex::new(()),
            idle_waiters_cv: Condvar::new(),
            panics: AtomicUsize::new(0),
            faults: config
                .faults
                .as_ref()
                .filter(|f| f.is_active())
                .cloned()
                .map(FaultState::new),
            // Hot-path counters (bumped per task or per search round) are
            // striped so workers never contend on a shared cache line; the
            // fault-injection counters fire rarely and stay single-cell.
            c_spawned: counters.striped_counter("rt.spawned"),
            c_executed: counters.striped_counter("rt.executed"),
            c_steals: counters.striped_counter("rt.steals"),
            c_parks: counters.striped_counter("rt.parks"),
            c_injected_panics: counters.counter("rt.injected_panics"),
            c_injected_stragglers: counters.counter("rt.injected_stragglers"),
        });
        let handles = deques
            .into_iter()
            .enumerate()
            .map(|(index, deque)| {
                let shared = shared.clone();
                let spin_rounds = config.spin_rounds;
                std::thread::Builder::new()
                    .name(format!("lg-worker-{index}"))
                    .spawn(move || worker_loop(shared, deque, index, spin_rounds))
                    .expect("failed to spawn worker")
            })
            .collect();
        Self {
            shared,
            counters,
            handles,
        }
    }

    /// The observation instance this pool reports to.
    pub fn lg(&self) -> &Arc<LookingGlass> {
        &self.shared.lg
    }

    /// The pool's thread-cap (also registered as knob `"thread_cap"`).
    pub fn thread_cap(&self) -> ThreadCap {
        self.shared.cap.clone()
    }

    /// Scheduling counters (`rt.spawned`, `rt.executed`, `rt.steals`,
    /// `rt.parks`).
    pub fn counters(&self) -> &Arc<CounterRegistry> {
        &self.counters
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.stealers.len()
    }

    /// Panics contained so far.
    pub fn panics(&self) -> usize {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Crash faults injected so far (0 if fault injection is disabled).
    pub fn injected_panics(&self) -> usize {
        self.shared
            .faults
            .as_ref()
            .map_or(0, |f| f.injected_panics())
    }

    /// Straggler faults injected so far (0 if fault injection is disabled).
    pub fn injected_stragglers(&self) -> usize {
        self.shared
            .faults
            .as_ref()
            .map_or(0, |f| f.injected_stragglers())
    }

    /// Tasks submitted and not yet finished.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::Acquire)
    }

    /// Spawns a fire-and-forget named task.
    pub fn spawn_named(&self, name: &str, body: impl FnOnce() + Send + 'static) {
        let id = self.shared.lg.intern(name);
        self.shared.push(Task::new(id, Box::new(body)));
    }

    /// Spawns a named task returning a [`JoinHandle`] for its result.
    pub fn spawn<T: Send + 'static>(
        &self,
        name: &str,
        body: impl FnOnce() -> T + Send + 'static,
    ) -> JoinHandle<T> {
        let id = self.shared.lg.intern(name);
        let (tx, rx) = join_pair();
        self.shared.push(Task::new(
            id,
            Box::new(move || {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)) {
                    Ok(v) => tx.send(v),
                    Err(_) => {
                        tx.send_panicked();
                        // Re-panic so the worker's own catch_unwind counts it.
                        std::panic::panic_any(crate::pool::ContainedPanic);
                    }
                }
            }),
        ));
        rx
    }

    /// Blocks until no tasks are pending. Concurrent spawns can of course
    /// re-arm the pool; this is a quiescence point, not a barrier.
    pub fn wait_idle(&self) {
        let mut g = self.shared.idle_waiters_lock.lock();
        while self.shared.pending.load(Ordering::Acquire) != 0 {
            self.shared
                .idle_waiters_cv
                .wait_for(&mut g, std::time::Duration::from_millis(50));
        }
    }

    pub(crate) fn shared(&self) -> &Arc<PoolShared> {
        &self.shared
    }
}

/// Marker payload for panics already surfaced through a JoinHandle.
pub(crate) struct ContainedPanic;

impl PoolShared {
    pub(crate) fn push(&self, mut task: Task) {
        if let Some(fs) = &self.faults {
            match fs.decide() {
                Some(TaskFault::Panic) => {
                    self.c_injected_panics.inc();
                    // Replacing the body drops the original closure here;
                    // a JoinSender captured inside resolves its handle as
                    // panicked via the drop guard, so `join` never hangs
                    // on a crash-faulted task.
                    task.body = Box::new(|| std::panic::panic_any(crate::fault::InjectedFault));
                }
                Some(TaskFault::Straggle(delay)) => {
                    self.c_injected_stragglers.inc();
                    let body = task.body;
                    task.body = Box::new(move || {
                        std::thread::sleep(delay);
                        body();
                    });
                }
                None => {}
            }
        }
        self.pending.fetch_add(1, Ordering::AcqRel);
        self.c_spawned.inc();
        let mut task = Some(task);
        CURRENT_WORKER.with(|cw| {
            if let Some((pool_id, _idx, deque)) = cw.get() {
                if pool_id == self.id {
                    // SAFETY: the pointer refers to the deque owned by
                    // *this* thread's worker loop, which is alive for the
                    // duration of any task body (including this call).
                    unsafe { (*deque).push(task.take().expect("task present")) };
                }
            }
        });
        if let Some(task) = task {
            self.injector.push(task);
        }
        let _g = self.idle_lock.lock();
        self.idle_cv.notify_one();
    }

    fn find_task(&self, local: &Deque<Task>, index: usize) -> Option<Task> {
        if let Some(t) = local.pop() {
            return Some(t);
        }
        loop {
            match self.injector.steal_batch_and_pop(local) {
                crossbeam::deque::Steal::Success(t) => return Some(t),
                crossbeam::deque::Steal::Retry => continue,
                crossbeam::deque::Steal::Empty => break,
            }
        }
        let n = self.stealers.len();
        for off in 1..n {
            let victim = (index + off) % n;
            loop {
                match self.stealers[victim].steal() {
                    crossbeam::deque::Steal::Success(t) => {
                        self.c_steals.inc();
                        return Some(t);
                    }
                    crossbeam::deque::Steal::Retry => continue,
                    crossbeam::deque::Steal::Empty => break,
                }
            }
        }
        None
    }

    fn finish_task(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.idle_waiters_lock.lock();
            self.idle_waiters_cv.notify_all();
        }
    }

    /// If the calling thread is one of this pool's workers, pops and runs
    /// one pending task (work-stealing join support: a worker blocked in a
    /// scope barrier helps instead of sleeping, which is what makes nested
    /// scopes and fork-join recursion deadlock-free). Returns true if a
    /// task was run.
    pub(crate) fn try_help(self: &Arc<Self>) -> bool {
        let found = CURRENT_WORKER.with(|cw| match cw.get() {
            Some((pool_id, idx, deque)) if pool_id == self.id => {
                // SAFETY: we are the thread that owns `deque`; the worker
                // loop (and therefore the deque) is alive because this call
                // happens inside a task body it is executing.
                let local = unsafe { &*deque };
                self.find_task(local, idx).map(|t| (t, idx))
            }
            _ => None,
        });
        match found {
            Some((task, idx)) => {
                run_task(self, task, idx);
                true
            }
            None => false,
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>, local: Deque<Task>, index: usize, spin_rounds: usize) {
    // Pin this worker's stripe index to its worker id so striped counters
    // and sharded listeners get a dense, deterministic worker → stripe map.
    lg_metrics::stripe::set_thread_index(index);
    CURRENT_WORKER.with(|cw| cw.set(Some((shared.id, index, &local as *const Deque<Task>))));
    shared.lg.emit(&Event::WorkerStart {
        worker: index,
        t_ns: shared.lg.now_ns(),
    });
    let mut online = true;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Throttling: park if the cap excludes this worker.
        if !shared.cap.allows(index) {
            if online {
                shared.lg.emit(&Event::WorkerStop {
                    worker: index,
                    t_ns: shared.lg.now_ns(),
                });
                online = false;
            }
            let allowed = shared
                .cap
                .wait_until_allowed(index, || shared.shutdown.load(Ordering::Acquire));
            if !allowed {
                break;
            }
            continue;
        }
        if !online {
            shared.lg.emit(&Event::WorkerStart {
                worker: index,
                t_ns: shared.lg.now_ns(),
            });
            online = true;
        }
        let mut found = false;
        for _ in 0..spin_rounds.max(1) {
            if let Some(task) = shared.find_task(&local, index) {
                run_task(&shared, task, index);
                found = true;
                break;
            }
            std::hint::spin_loop();
        }
        if found {
            continue;
        }
        // Park until a spawn notifies us (bounded wait so shutdown and cap
        // changes are always observed).
        shared.c_parks.inc();
        let mut g = shared.idle_lock.lock();
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        shared
            .idle_cv
            .wait_for(&mut g, std::time::Duration::from_millis(10));
    }
    if online {
        shared.lg.emit(&Event::WorkerStop {
            worker: index,
            t_ns: shared.lg.now_ns(),
        });
    }
    CURRENT_WORKER.with(|cw| cw.set(None));
}

fn run_task(shared: &Arc<PoolShared>, task: Task, index: usize) {
    let Task {
        name,
        body,
        completion,
    } = task;
    let t0 = shared.lg.now_ns();
    shared.lg.emit(&Event::TaskBegin {
        task: name,
        worker: index,
        t_ns: t0,
    });
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    let t1 = shared.lg.now_ns();
    shared.lg.emit(&Event::TaskEnd {
        task: name,
        worker: index,
        t_ns: t1,
        elapsed_ns: t1.saturating_sub(t0),
    });
    shared.c_executed.inc();
    if result.is_err() {
        shared.panics.fetch_add(1, Ordering::Relaxed);
    }
    shared.finish_task();
    // Completion hooks run last, after the task is fully observable.
    if let Some(c) = completion {
        c();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cap.wake_all();
        {
            let _g = self.shared.idle_lock.lock();
            self.shared.idle_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers())
            .field("cap", &self.shared.cap.current())
            .field("pending", &self.pending())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn pool(workers: usize) -> ThreadPool {
        let lg = LookingGlass::builder().build();
        ThreadPool::new(
            lg,
            PoolConfig {
                workers,
                spin_rounds: 4,
                register_knobs: true,
                faults: None,
            },
        )
    }

    #[test]
    fn runs_spawned_tasks() {
        let p = pool(2);
        let count = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = count.clone();
            p.spawn_named("inc", move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        p.wait_idle();
        assert_eq!(count.load(Ordering::Relaxed), 100);
        assert_eq!(p.counters().counter("rt.executed").get(), 100);
    }

    #[test]
    fn scheduling_counters_are_striped() {
        let p = pool(2);
        for name in ["rt.spawned", "rt.executed", "rt.steals", "rt.parks"] {
            assert!(p.counters().counter(name).is_striped(), "{name}");
        }
        // Fault counters fire rarely and stay single-cell.
        assert!(!p.counters().counter("rt.injected_panics").is_striped());
    }

    #[test]
    fn join_handle_returns_value() {
        let p = pool(2);
        let h = p.spawn("answer", || 6 * 7);
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let p = pool(4);
        let n = 2000;
        let hits: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        for i in 0..n {
            let hits = hits.clone();
            p.spawn_named("once", move || {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        p.wait_idle();
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::Relaxed),
                1,
                "task {i} ran a wrong number of times"
            );
        }
    }

    #[test]
    fn panicking_task_is_contained() {
        let p = pool(2);
        let h = p.spawn("boom", || panic!("intentional"));
        assert!(h.join().is_err());
        // Pool still works afterwards.
        let h2 = p.spawn("after", || 1);
        assert_eq!(h2.join().unwrap(), 1);
        // join() wakes before the worker finishes its own bookkeeping;
        // quiesce before reading the panic counter.
        p.wait_idle();
        assert_eq!(p.panics(), 1);
    }

    #[test]
    fn tasks_spawned_from_tasks_run() {
        let p = Arc::new(pool(2));
        let count = Arc::new(AtomicU64::new(0));
        let shared = p.shared().clone();
        let c = count.clone();
        let lg = p.lg().clone();
        p.spawn_named("parent", move || {
            for _ in 0..10 {
                let c = c.clone();
                let id = lg.intern("child");
                shared.push(crate::task::Task::new(
                    id,
                    Box::new(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    }),
                ));
            }
        });
        p.wait_idle();
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn profiles_observe_tasks() {
        let p = pool(2);
        for _ in 0..5 {
            p.spawn_named("profiled", || {
                std::hint::black_box((0..1000).sum::<u64>());
            });
        }
        p.wait_idle();
        let prof = p.lg().profiles().get("profiled").unwrap();
        assert_eq!(prof.count, 5);
        assert_eq!(prof.active, 0);
        assert!(prof.mean_ns > 0.0);
    }

    #[test]
    fn thread_cap_knob_registered() {
        let p = pool(4);
        assert_eq!(p.lg().knobs().value("thread_cap"), Some(4));
        p.lg().knobs().set("thread_cap", 2);
        assert_eq!(p.thread_cap().current(), 2);
    }

    #[test]
    fn throttled_pool_still_completes_work() {
        let p = pool(4);
        p.thread_cap().set_cap(1);
        let count = Arc::new(AtomicU64::new(0));
        for _ in 0..200 {
            let c = count.clone();
            p.spawn_named("t", move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        p.wait_idle();
        assert_eq!(count.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn cap_changes_mid_stream_lose_nothing() {
        let p = pool(4);
        let count = Arc::new(AtomicU64::new(0));
        for burst in 0..10 {
            p.thread_cap().set_cap(1 + (burst % 4));
            for _ in 0..50 {
                let c = count.clone();
                p.spawn_named("t", move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        p.wait_idle();
        assert_eq!(count.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn wait_idle_on_empty_pool_returns() {
        let p = pool(2);
        p.wait_idle();
    }

    #[test]
    fn drop_joins_workers() {
        let p = pool(3);
        p.spawn_named("x", || {});
        p.wait_idle();
        drop(p); // must not hang
    }

    #[test]
    fn injected_panics_are_contained_and_counted() {
        let lg = LookingGlass::builder().build();
        let p = ThreadPool::new(
            lg,
            PoolConfig {
                workers: 2,
                spin_rounds: 2,
                register_knobs: false,
                faults: Some(crate::fault::FaultConfig::seeded(7).panic_prob(0.5)),
            },
        );
        let count = Arc::new(AtomicU64::new(0));
        let n = 400;
        for _ in 0..n {
            let c = count.clone();
            p.spawn_named("maybe", move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        p.wait_idle();
        let crashed = p.injected_panics();
        assert!(
            crashed > 0,
            "0.5 panic prob over {n} tasks injected nothing"
        );
        assert_eq!(count.load(Ordering::Relaxed) as usize, n - crashed);
        assert_eq!(p.panics(), crashed, "every injected crash was contained");
        assert_eq!(
            p.counters().counter("rt.injected_panics").get() as usize,
            crashed
        );
        // Pool still functional.
        let h = p.spawn("after", || 3);
        assert!(matches!(h.join(), Ok(3) | Err(_)));
    }

    #[test]
    fn crash_faulted_spawn_still_resolves_join() {
        let lg = LookingGlass::builder().build();
        let p = ThreadPool::new(
            lg,
            PoolConfig {
                workers: 2,
                spin_rounds: 2,
                register_knobs: false,
                faults: Some(crate::fault::FaultConfig::seeded(1).panic_prob(1.0)),
            },
        );
        // Every task crashes; joins must error, never hang.
        for _ in 0..50 {
            assert!(p.spawn("doomed", || 1).join().is_err());
        }
        p.wait_idle();
        assert_eq!(p.injected_panics(), 50);
    }

    #[test]
    fn stragglers_delay_but_complete() {
        let lg = LookingGlass::builder().build();
        let p = ThreadPool::new(
            lg,
            PoolConfig {
                workers: 2,
                spin_rounds: 2,
                register_knobs: false,
                faults: Some(
                    crate::fault::FaultConfig::seeded(3)
                        .straggler(1.0, std::time::Duration::from_millis(5)),
                ),
            },
        );
        let t0 = std::time::Instant::now();
        let h = p.spawn("slow", || 11);
        assert_eq!(h.join().unwrap(), 11);
        assert!(t0.elapsed() >= std::time::Duration::from_millis(5));
        assert_eq!(p.injected_stragglers(), 1);
        assert_eq!(p.counters().counter("rt.injected_stragglers").get(), 1);
        assert_eq!(p.panics(), 0);
    }

    #[test]
    fn inactive_fault_config_injects_nothing() {
        let lg = LookingGlass::builder().build();
        let p = ThreadPool::new(
            lg,
            PoolConfig {
                workers: 2,
                spin_rounds: 2,
                register_knobs: false,
                faults: Some(crate::fault::FaultConfig::seeded(9)),
            },
        );
        for _ in 0..100 {
            p.spawn_named("fine", || {});
        }
        p.wait_idle();
        assert_eq!(p.injected_panics(), 0);
        assert_eq!(p.injected_stragglers(), 0);
        assert_eq!(p.panics(), 0);
    }

    #[test]
    fn worker_events_reach_concurrency_listener() {
        let lg = LookingGlass::builder().build();
        let p = ThreadPool::new(
            lg.clone(),
            PoolConfig {
                workers: 2,
                spin_rounds: 1,
                register_knobs: false,
                faults: None,
            },
        );
        // Workers come online lazily but WorkerStart fires at thread start.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while lg.concurrency().online_workers() < 2 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(lg.concurrency().online_workers(), 2);
        drop(p);
        assert_eq!(lg.concurrency().online_workers(), 0);
    }
}
