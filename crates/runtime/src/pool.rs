//! The work-stealing thread pool.
//!
//! Four-level scheduling (the rayon/tokio shape):
//!
//! 1. **LIFO slot** — each worker owns a single-task slot; a task spawned
//!    *by* a running worker lands there and executes next, with hot
//!    caches. The previous occupant is displaced to the local deque.
//! 2. **Local deque** — each worker owns a Chase–Lev deque; slot
//!    displacements go there (FIFO pop for fairness).
//! 3. **Global injector** — tasks spawned from outside land in an MPMC
//!    injector; workers batch-steal from it (`steal_batch_and_pop`), and
//!    [`ThreadPool::spawn_batch`] pushes whole chunk sets in one
//!    operation.
//! 4. **Stealing** — an idle worker scans the other workers' deques
//!    (FIFO steal) starting from a per-worker rotation point.
//!
//! Idle workers back off adaptively — bounded spin, then yields, then a
//! park with an escalating timeout. Parks are counted in an idle-worker
//! gauge, and spawns only touch the condvar when that gauge is non-zero,
//! so steady-state spawn onto a busy pool performs **no condvar traffic
//! and no allocation** (task bodies are stored inline, see
//! [`crate::task`]). Batch spawns wake `min(batch, idle)` workers in one
//! wave instead of notify-one per task.
//!
//! Task bodies run under `catch_unwind`: a panicking task increments a
//! counter and (for [`ThreadPool::spawn`]) surfaces through the
//! [`JoinHandle`]; it never takes a worker down.
//!
//! With a [`FaultConfig`] set, submitted tasks may be adversarially
//! crashed or delayed (see [`crate::fault`]) — the substrate for
//! resilience experiments. Injected bodies are built through the normal
//! [`crate::task::TaskBody`] constructors, so they exercise the same
//! inline/boxed representation as real tasks.

use crate::budget::ThreadBudget;
use crate::fault::{FaultConfig, FaultState, TaskFault};
use crate::task::{join_pair, BodyKind, JoinHandle, Task, TaskBody};
use crate::throttle::ThreadCap;
use crossbeam::deque::{Injector, Stealer, Worker as Deque};
use lg_core::knob::{AtomicKnob, KnobSpec};
use lg_core::{Event, LookingGlass};
use lg_metrics::{CounterHandle, CounterRegistry};
use parking_lot::{Condvar, Mutex};
use std::cell::{Cell, UnsafeCell};
use std::collections::HashMap;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Pool configuration.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Spin rounds through the full search before yielding/parking.
    pub spin_rounds: usize,
    /// Register the pool's `thread_cap` knob on the instance's registry.
    pub register_knobs: bool,
    /// Injected task faults (crash/straggler), for resilience testing.
    pub faults: Option<FaultConfig>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            spin_rounds: 16,
            register_knobs: true,
            faults: None,
        }
    }
}

impl PoolConfig {
    /// Config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers,
            ..Default::default()
        }
    }
}

/// Yield rounds between the spin phase and parking (adaptive backoff).
const YIELD_ROUNDS: usize = 4;
/// First park timeout; doubles per consecutive empty park up to the max.
const PARK_MIN: std::time::Duration = std::time::Duration::from_millis(1);
/// Park timeout ceiling (bounds how stale a missed wake can get).
const PARK_MAX: std::time::Duration = std::time::Duration::from_millis(10);

thread_local! {
    /// (pool id, worker index, pointer to the worker's local deque).
    ///
    /// The pointer is only dereferenced by the owning thread while the
    /// worker loop is alive; it is cleared before the loop exits.
    static CURRENT_WORKER: Cell<Option<(usize, usize, *const Deque<Task>)>> =
        const { Cell::new(None) };
}

static POOL_IDS: AtomicUsize = AtomicUsize::new(1);

/// A worker's LIFO slot: one task, owner-thread-only access.
///
/// The slot is only ever touched by the worker thread that owns it — it
/// fills when a task body running on that worker spawns, and drains in
/// that worker's own `find_task`, throttle transition, or shutdown path —
/// so a plain `UnsafeCell` suffices. Padded so neighbouring slots never
/// share a cache line.
#[repr(align(64))]
struct LifoSlot {
    cell: UnsafeCell<Option<Task>>,
}

// SAFETY: see the struct docs — every access is from the owning worker
// thread; the container is only shared for placement, never for aliased
// access.
unsafe impl Sync for LifoSlot {}

/// Residency bookkeeping for budget-released workers: the deque of a
/// released worker is shelved here (still referenced by its stealer, so
/// the object must survive) until a grow re-spawns a thread onto it.
struct ParkedWorkers {
    deques: HashMap<usize, Deque<Task>>,
    /// `live[i]` — worker `i` has a resident OS thread. Flipped under the
    /// `parked` lock by the releasing worker itself (the commit point of
    /// a release) and by the re-spawner.
    live: Vec<bool>,
}

pub(crate) struct PoolShared {
    pub(crate) id: usize,
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    slots: Vec<LifoSlot>,
    lg: Arc<LookingGlass>,
    cap: ThreadCap,
    budget: ThreadBudget,
    spin_rounds: usize,
    parked: Mutex<ParkedWorkers>,
    parked_cv: Condvar,
    /// Join handles, indexed by worker; re-spawns replace their slot (the
    /// old thread has exited by then, so dropping its handle is a no-op
    /// detach).
    handles: Mutex<Vec<Option<std::thread::JoinHandle<()>>>>,
    shutdown: AtomicBool,
    /// Tasks submitted and not yet finished (for `wait_idle`).
    pending: AtomicUsize,
    /// Workers currently parked on `idle_cv`. Spawns skip the condvar
    /// entirely while this is zero — the no-condvar fast path.
    idle_workers: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    /// Waiters blocked in `wait_idle`.
    idle_waiters_lock: Mutex<()>,
    idle_waiters_cv: Condvar,
    panics: AtomicUsize,
    faults: Option<FaultState>,
    /// `dag.critical_bias` — 1 routes critical-path DAG tasks through the
    /// priority lane (LIFO slot / front-of-queue), 0 disables the bias so
    /// they take the normal steal path. Policy-steerable (see
    /// `lg_core::dag::CriticalPathPolicy`).
    dag_bias: Arc<AtomicKnob>,
    c_spawned: CounterHandle,
    c_executed: CounterHandle,
    c_steals: CounterHandle,
    c_parks: CounterHandle,
    c_inline_tasks: CounterHandle,
    c_boxed_tasks: CounterHandle,
    c_batch_spawns: CounterHandle,
    c_lifo_hits: CounterHandle,
    c_priority_pushes: CounterHandle,
    c_injected_panics: CounterHandle,
    c_injected_stragglers: CounterHandle,
}

/// The work-stealing thread pool. Dropping it drains nothing: it signals
/// shutdown, wakes everyone, and joins the workers (pending tasks that
/// were not yet started are dropped).
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    counters: Arc<CounterRegistry>,
}

impl ThreadPool {
    /// Creates a pool attached to a `LookingGlass` instance.
    ///
    /// # Panics
    /// Panics if `config.workers` is zero.
    pub fn new(lg: Arc<LookingGlass>, config: PoolConfig) -> Self {
        assert!(config.workers > 0, "pool needs at least one worker");
        let counters = Arc::new(CounterRegistry::new());
        let deques: Vec<Deque<Task>> = (0..config.workers).map(|_| Deque::new_fifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let slots = (0..config.workers)
            .map(|_| LifoSlot {
                cell: UnsafeCell::new(None),
            })
            .collect();
        let cap = ThreadCap::new(config.workers);
        let budget = ThreadBudget::new(config.workers);
        let dag_bias = AtomicKnob::new(
            KnobSpec::new("dag.critical_bias", 0, 1)
                .with_unit("bool")
                .with_default(1),
            1,
        );
        if config.register_knobs {
            lg.knobs().register(Arc::new(cap.clone()));
            lg.knobs().register(Arc::new(budget.clone()));
            lg.knobs().register(dag_bias.clone());
            // The pool's counters ride along in every introspection
            // snapshot the instance captures.
            lg.introspection().register_counters(counters.clone());
        }
        let shared = Arc::new(PoolShared {
            id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            injector: Injector::new(),
            stealers,
            slots,
            lg,
            cap,
            budget: budget.clone(),
            spin_rounds: config.spin_rounds,
            parked: Mutex::new(ParkedWorkers {
                deques: HashMap::new(),
                live: vec![true; config.workers],
            }),
            parked_cv: Condvar::new(),
            handles: Mutex::new((0..config.workers).map(|_| None).collect()),
            shutdown: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
            idle_workers: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            idle_waiters_lock: Mutex::new(()),
            idle_waiters_cv: Condvar::new(),
            panics: AtomicUsize::new(0),
            dag_bias,
            faults: config
                .faults
                .as_ref()
                .filter(|f| f.is_active())
                .cloned()
                .map(FaultState::new),
            // Hot-path counters (bumped per task or per search round) are
            // striped so workers never contend on a shared cache line; the
            // fault-injection counters fire rarely and stay single-cell.
            c_spawned: counters.striped_counter("rt.spawned"),
            c_executed: counters.striped_counter("rt.executed"),
            c_steals: counters.striped_counter("rt.steals"),
            c_parks: counters.striped_counter("rt.parks"),
            c_inline_tasks: counters.striped_counter("rt.inline_tasks"),
            c_boxed_tasks: counters.striped_counter("rt.boxed_tasks"),
            c_batch_spawns: counters.striped_counter("rt.batch_spawns"),
            c_lifo_hits: counters.striped_counter("rt.lifo_hits"),
            c_priority_pushes: counters.striped_counter("rt.priority_pushes"),
            c_injected_panics: counters.counter("rt.injected_panics"),
            c_injected_stragglers: counters.counter("rt.injected_stragglers"),
        });
        budget.attach(&shared);
        {
            let mut handles = shared.handles.lock();
            for (index, deque) in deques.into_iter().enumerate() {
                let shared = shared.clone();
                let spin_rounds = config.spin_rounds;
                handles[index] = Some(
                    std::thread::Builder::new()
                        .name(format!("lg-worker-{index}"))
                        .spawn(move || worker_loop(shared, deque, index, spin_rounds))
                        .expect("failed to spawn worker"),
                );
            }
        }
        Self { shared, counters }
    }

    /// The observation instance this pool reports to.
    pub fn lg(&self) -> &Arc<LookingGlass> {
        &self.shared.lg
    }

    /// The pool's thread-cap (also registered as knob `"thread_cap"`).
    pub fn thread_cap(&self) -> ThreadCap {
        self.shared.cap.clone()
    }

    /// The pool's thread-budget (also registered as knob
    /// `"thread_budget"`). Unlike the cap, shrinking the budget actually
    /// releases worker OS threads; growing re-spawns them.
    pub fn thread_budget(&self) -> ThreadBudget {
        self.shared.budget.clone()
    }

    /// The `dag.critical_bias` knob: 1 (default) routes critical-path DAG
    /// tasks through the priority lane, 0 sends them down the normal
    /// steal path. Registered on the instance's knob registry when
    /// `register_knobs` is set, so policies steer it by name.
    pub fn dag_bias_knob(&self) -> Arc<AtomicKnob> {
        self.shared.dag_bias.clone()
    }

    /// Worker indices with a resident OS thread right now. Shrinking the
    /// budget drops this (workers exit at their next scheduling
    /// decision); growing it restores it.
    pub fn resident_workers(&self) -> usize {
        self.shared
            .parked
            .lock()
            .live
            .iter()
            .filter(|l| **l)
            .count()
    }

    /// Scheduling counters (`rt.spawned`, `rt.executed`, `rt.steals`,
    /// `rt.parks`, `rt.inline_tasks`, `rt.boxed_tasks`, `rt.batch_spawns`,
    /// `rt.lifo_hits`).
    pub fn counters(&self) -> &Arc<CounterRegistry> {
        &self.counters
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.stealers.len()
    }

    /// Panics contained so far.
    pub fn panics(&self) -> usize {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Crash faults injected so far (0 if fault injection is disabled).
    pub fn injected_panics(&self) -> usize {
        self.shared
            .faults
            .as_ref()
            .map_or(0, |f| f.injected_panics())
    }

    /// Straggler faults injected so far (0 if fault injection is disabled).
    pub fn injected_stragglers(&self) -> usize {
        self.shared
            .faults
            .as_ref()
            .map_or(0, |f| f.injected_stragglers())
    }

    /// Tasks submitted and not yet finished.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::Acquire)
    }

    /// Spawns a fire-and-forget named task.
    pub fn spawn_named(&self, name: &str, body: impl FnOnce() + Send + 'static) {
        let id = self.shared.lg.intern(name);
        self.shared.push(Task::new(id, TaskBody::new(body)));
    }

    /// Spawns a named task returning a [`JoinHandle`] for its result.
    pub fn spawn<T: Send + 'static>(
        &self,
        name: &str,
        body: impl FnOnce() -> T + Send + 'static,
    ) -> JoinHandle<T> {
        let id = self.shared.lg.intern(name);
        let (tx, rx) = join_pair();
        self.shared.push(Task::new(
            id,
            TaskBody::new(move || {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)) {
                    Ok(v) => tx.send(v),
                    Err(_) => {
                        tx.send_panicked();
                        // Re-panic so the worker's own catch_unwind counts it.
                        std::panic::panic_any(crate::pool::ContainedPanic);
                    }
                }
            }),
        ));
        rx.with_helper(self.shared.clone())
    }

    /// Spawns one fire-and-forget task per `chunk`-sized slice of `range`,
    /// sharing a single `Arc` of `body` across all chunks (each task
    /// captures `(Arc, start, end)` — exactly the inline budget, so no
    /// per-chunk boxing). The whole set enters the injector in one batch
    /// push and wakes `min(chunks, idle)` workers in one wave. Returns the
    /// number of chunk tasks spawned.
    ///
    /// For the blocking/borrowing form used by
    /// [`ThreadPool::parallel_for`], see [`crate::Scope::spawn_batch`].
    ///
    /// # Panics
    /// Panics if `chunk` is zero.
    pub fn spawn_batch<F>(
        &self,
        name: &str,
        range: std::ops::Range<usize>,
        chunk: usize,
        body: F,
    ) -> usize
    where
        F: Fn(usize, usize) + Send + Sync + 'static,
    {
        assert!(chunk > 0, "chunk size must be positive");
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return 0;
        }
        let chunks = len.div_ceil(chunk);
        let id = self.shared.lg.intern(name);
        let shared_body = Arc::new(body);
        let mut tasks = Vec::with_capacity(chunks);
        let mut start = range.start;
        while start < range.end {
            let end = (start + chunk).min(range.end);
            let b = shared_body.clone();
            tasks.push(Task::new(id, TaskBody::new(move || b(start, end))));
            start = end;
        }
        self.shared.push_batch(tasks);
        chunks
    }

    /// Blocks until no tasks are pending. Concurrent spawns can of course
    /// re-arm the pool; this is a quiescence point, not a barrier.
    pub fn wait_idle(&self) {
        let mut g = self.shared.idle_waiters_lock.lock();
        while self.shared.pending.load(Ordering::Acquire) != 0 {
            self.shared
                .idle_waiters_cv
                .wait_for(&mut g, std::time::Duration::from_millis(50));
        }
    }

    pub(crate) fn shared(&self) -> &Arc<PoolShared> {
        &self.shared
    }
}

/// Marker payload for panics already surfaced through a JoinHandle.
pub(crate) struct ContainedPanic;

impl PoolShared {
    /// Applies any drawn fault and records the per-task accounting every
    /// submission path shares (pending, spawn counter, representation
    /// counters).
    fn admit(&self, mut task: Task) -> Task {
        if let Some(fs) = &self.faults {
            match fs.decide() {
                Some(TaskFault::Panic) => {
                    self.c_injected_panics.inc();
                    // Built through the normal constructor so injected
                    // bodies use the same inline representation as real
                    // tasks. Replacing the body drops the original closure
                    // here; a JoinSender captured inside resolves its
                    // handle as panicked via the drop guard, so `join`
                    // never hangs on a crash-faulted task.
                    task.body =
                        TaskBody::new(|| std::panic::panic_any(crate::fault::InjectedFault));
                }
                Some(TaskFault::Straggle(delay)) => {
                    self.c_injected_stragglers.inc();
                    let body = std::mem::replace(&mut task.body, TaskBody::new(|| {}));
                    task.body = TaskBody::new(move || {
                        std::thread::sleep(delay);
                        body.invoke();
                    });
                }
                None => {}
            }
        }
        self.pending.fetch_add(1, Ordering::AcqRel);
        self.c_spawned.inc();
        match task.body.kind() {
            BodyKind::Inline => self.c_inline_tasks.inc(),
            BodyKind::Slab | BodyKind::Boxed => self.c_boxed_tasks.inc(),
        }
        task
    }

    pub(crate) fn push(&self, task: Task) {
        let task = self.admit(task);
        let mut task = Some(task);
        CURRENT_WORKER.with(|cw| {
            if let Some((pool_id, idx, deque)) = cw.get() {
                if pool_id == self.id {
                    // LIFO slot: the freshly spawned task runs next on this
                    // worker, caches hot. The previous occupant moves to
                    // the local deque, where it stays stealable.
                    // SAFETY: this thread is worker `idx` of this pool —
                    // the only thread that touches `slots[idx]` — and the
                    // deque pointer refers to the deque owned by this
                    // thread's worker loop, which is alive for the
                    // duration of any task body (including this call).
                    let displaced = unsafe {
                        (*self.slots[idx].cell.get()).replace(task.take().expect("task present"))
                    };
                    if let Some(displaced) = displaced {
                        unsafe { (*deque).push(displaced) };
                        // The displaced task is claimable by others.
                        self.wake_workers(1);
                    }
                    // No wake for the slot occupant itself: this worker
                    // runs it as soon as the current body returns.
                }
            }
        });
        if let Some(task) = task {
            self.injector.push(task);
            self.wake_workers(1);
        }
    }

    /// Priority push for critical-path DAG tasks: on a worker of this
    /// pool, the task takes the LIFO slot (runs next, caches hot) and any
    /// displaced occupant goes to the *front* of the local deque so it
    /// stays ahead of older queued work; from outside, the task enters
    /// the injector at the steal end so the next batch-steal returns it
    /// first. With the `dag.critical_bias` knob at 0 this degrades to a
    /// normal [`PoolShared::push`].
    pub(crate) fn push_priority(&self, task: Task) {
        if !self.dag_bias_enabled() {
            self.push(task);
            return;
        }
        let task = self.admit(task);
        self.c_priority_pushes.inc();
        let mut task = Some(task);
        CURRENT_WORKER.with(|cw| {
            if let Some((pool_id, idx, deque)) = cw.get() {
                if pool_id == self.id {
                    // SAFETY: same argument as `push` — this thread is
                    // worker `idx` of this pool, sole owner of its slot,
                    // and the deque pointer is live for the duration of
                    // any task body.
                    let displaced = unsafe {
                        (*self.slots[idx].cell.get()).replace(task.take().expect("task present"))
                    };
                    if let Some(displaced) = displaced {
                        unsafe { (*deque).push_front(displaced) };
                        self.wake_workers(1);
                    }
                }
            }
        });
        if let Some(task) = task {
            self.injector.push_front(task);
            self.wake_workers(1);
        }
    }

    /// True while the `dag.critical_bias` knob routes critical tasks
    /// through the priority lane.
    pub(crate) fn dag_bias_enabled(&self) -> bool {
        use lg_core::knob::Knob;
        self.dag_bias.get() != 0
    }

    /// Pushes a pre-built chunk set into the injector in one operation and
    /// wakes `min(batch, idle)` workers in a single wave.
    pub(crate) fn push_batch(&self, tasks: Vec<Task>) {
        let n = tasks.len();
        if n == 0 {
            return;
        }
        self.c_batch_spawns.inc();
        self.injector
            .push_batch(tasks.into_iter().map(|t| self.admit(t)));
        self.wake_workers(n);
    }

    /// Wakes up to `n` parked workers — nothing at all on the fast path
    /// where no one is parked.
    fn wake_workers(&self, n: usize) {
        // The fence orders the task-visible writes above before the idle
        // gauge read (the parking side pairs with it via its SeqCst RMW),
        // so a worker that missed the task is seen here and woken. A park
        // is bounded (PARK_MAX) regardless, so this is a latency
        // optimisation contract, not a liveness one.
        fence(Ordering::SeqCst);
        let idle = self.idle_workers.load(Ordering::Relaxed);
        if idle == 0 {
            return;
        }
        let _g = self.idle_lock.lock();
        if n >= idle {
            self.idle_cv.notify_all();
        } else {
            for _ in 0..n {
                self.idle_cv.notify_one();
            }
        }
    }

    /// True if any queue a parking worker could serve holds work.
    fn has_stealable_work(&self) -> bool {
        if !self.injector.is_empty() {
            return true;
        }
        self.stealers.iter().any(|s| !s.is_empty())
    }

    fn find_task(&self, local: &Deque<Task>, index: usize) -> Option<Task> {
        // SAFETY: only worker `index` (this thread) calls `find_task` with
        // its own index — see the callers in `worker_loop` and `try_help`.
        if let Some(t) = unsafe { (*self.slots[index].cell.get()).take() } {
            self.c_lifo_hits.inc();
            return Some(t);
        }
        if let Some(t) = local.pop() {
            return Some(t);
        }
        loop {
            match self.injector.steal_batch_and_pop(local) {
                crossbeam::deque::Steal::Success(t) => return Some(t),
                crossbeam::deque::Steal::Retry => continue,
                crossbeam::deque::Steal::Empty => break,
            }
        }
        let n = self.stealers.len();
        for off in 1..n {
            let victim = (index + off) % n;
            loop {
                match self.stealers[victim].steal() {
                    crossbeam::deque::Steal::Success(t) => {
                        self.c_steals.inc();
                        return Some(t);
                    }
                    crossbeam::deque::Steal::Retry => continue,
                    crossbeam::deque::Steal::Empty => break,
                }
            }
        }
        None
    }

    /// Throttle drain rule: a worker about to park under the thread cap
    /// first evicts its LIFO slot into the injector, so no task strands on
    /// a parked worker (the slot, unlike the deque, is not stealable).
    fn drain_slot(&self, index: usize) {
        // SAFETY: called only by worker `index` on its own slot.
        if let Some(t) = unsafe { (*self.slots[index].cell.get()).take() } {
            self.injector.push(t);
            self.wake_workers(1);
        }
    }

    fn finish_task(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.idle_waiters_lock.lock();
            self.idle_waiters_cv.notify_all();
        }
    }

    /// Reacts to a thread-budget write: wakes every parked or throttled
    /// worker so over-budget ones release promptly, then re-spawns
    /// workers whose indices came back inside the budget onto their
    /// shelved deques. Waits (bounded) for an outgoing worker that has
    /// committed to release but not yet shelved its deque.
    pub(crate) fn apply_budget(self: &Arc<Self>) {
        self.cap.wake_all();
        {
            let _g = self.idle_lock.lock();
            self.idle_cv.notify_all();
        }
        let n = self.stealers.len();
        for index in 0..n {
            loop {
                if self.shutdown.load(Ordering::Acquire) || !self.budget.allows(index) {
                    break;
                }
                let mut parked = self.parked.lock();
                if parked.live[index] {
                    break;
                }
                if let Some(deque) = parked.deques.remove(&index) {
                    parked.live[index] = true;
                    drop(parked);
                    let shared = self.clone();
                    let spin_rounds = self.spin_rounds;
                    let h = std::thread::Builder::new()
                        .name(format!("lg-worker-{index}"))
                        .spawn(move || worker_loop(shared, deque, index, spin_rounds))
                        .expect("failed to respawn worker");
                    // The old thread exited when it shelved this deque;
                    // dropping its handle just detaches it.
                    self.handles.lock()[index] = Some(h);
                    break;
                }
                // Release committed but the deque is not shelved yet:
                // wait for the outgoing worker (bounded, re-checked).
                self.parked_cv
                    .wait_for(&mut parked, std::time::Duration::from_millis(50));
            }
        }
    }

    /// True if the calling thread is one of this pool's workers.
    pub(crate) fn is_current_worker(&self) -> bool {
        CURRENT_WORKER.with(|cw| matches!(cw.get(), Some((pool_id, ..)) if pool_id == self.id))
    }

    /// If the calling thread is one of this pool's workers, pops and runs
    /// one pending task (work-stealing join support: a worker blocked in a
    /// scope barrier helps instead of sleeping, which is what makes nested
    /// scopes and fork-join recursion deadlock-free). Returns true if a
    /// task was run.
    pub(crate) fn try_help(self: &Arc<Self>) -> bool {
        let found = CURRENT_WORKER.with(|cw| match cw.get() {
            Some((pool_id, idx, deque)) if pool_id == self.id => {
                // SAFETY: we are the thread that owns `deque`; the worker
                // loop (and therefore the deque) is alive because this call
                // happens inside a task body it is executing.
                let local = unsafe { &*deque };
                self.find_task(local, idx).map(|t| (t, idx))
            }
            _ => None,
        });
        match found {
            Some((task, idx)) => {
                run_task(self, task, idx);
                true
            }
            None => false,
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>, local: Deque<Task>, index: usize, spin_rounds: usize) {
    // Pin this worker's stripe index to its worker id so striped counters
    // and sharded listeners get a dense, deterministic worker → stripe map.
    lg_metrics::stripe::set_thread_index(index);
    CURRENT_WORKER.with(|cw| cw.set(Some((shared.id, index, &local as *const Deque<Task>))));
    shared.lg.emit(&Event::WorkerStart {
        worker: index,
        t_ns: shared.lg.now_ns(),
    });
    let mut online = true;
    let mut park_timeout = PARK_MIN;
    let mut released = false;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Budget: a worker outside the budget gives its OS thread back.
        // The flip of `live` under the parked lock is the commit point —
        // a concurrent grow either sees `live == true` (we stay, because
        // we re-check the budget under the same lock) or waits for the
        // deque we shelve on the way out.
        if !shared.budget.allows(index) {
            let mut parked = shared.parked.lock();
            if !shared.budget.allows(index) {
                parked.live[index] = false;
                released = true;
            }
            drop(parked);
            if released {
                break;
            }
            continue;
        }
        // Throttling: park if the cap excludes this worker. Drain the LIFO
        // slot first — a throttled worker must never sit on a task.
        if !shared.cap.allows(index) {
            shared.drain_slot(index);
            if online {
                shared.lg.emit(&Event::WorkerStop {
                    worker: index,
                    t_ns: shared.lg.now_ns(),
                });
                online = false;
            }
            let allowed = shared.cap.wait_until_allowed(index, || {
                shared.shutdown.load(Ordering::Acquire) || !shared.budget.allows(index)
            });
            if !allowed {
                // Shutdown or budget release: the loop head decides which.
                continue;
            }
            continue;
        }
        if !online {
            shared.lg.emit(&Event::WorkerStart {
                worker: index,
                t_ns: shared.lg.now_ns(),
            });
            online = true;
        }
        // Adaptive idle backoff: spin (cheap, latency-optimal), then yield
        // the timeslice, then park with an escalating timeout.
        let mut found = false;
        for round in 0..(spin_rounds.max(1) + YIELD_ROUNDS) {
            if let Some(task) = shared.find_task(&local, index) {
                run_task(&shared, task, index);
                found = true;
                break;
            }
            if round < spin_rounds.max(1) {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        if found {
            park_timeout = PARK_MIN;
            continue;
        }
        // Park. The idle gauge makes this worker visible to spawners (who
        // skip the condvar entirely while it reads zero); the SeqCst RMW
        // pairs with the fence in `wake_workers`, and the re-check under
        // the lock closes the remaining publish/park race. The wait stays
        // bounded so shutdown and cap changes are always observed.
        shared.c_parks.inc();
        let mut g = shared.idle_lock.lock();
        shared.idle_workers.fetch_add(1, Ordering::SeqCst);
        if !shared.shutdown.load(Ordering::Acquire) && !shared.has_stealable_work() {
            shared.idle_cv.wait_for(&mut g, park_timeout);
            park_timeout = (park_timeout * 2).min(PARK_MAX);
        }
        shared.idle_workers.fetch_sub(1, Ordering::SeqCst);
    }
    // Exit (shutdown or budget release). On shutdown, anything still in
    // the slot is dropped with the pool's other pending tasks (drop
    // guards resolve joins); on release it re-enters the injector below.
    shared.drain_slot(index);
    if online {
        shared.lg.emit(&Event::WorkerStop {
            worker: index,
            t_ns: shared.lg.now_ns(),
        });
    }
    // Cleared before the deque moves: it holds a raw pointer to `local`.
    CURRENT_WORKER.with(|cw| cw.set(None));
    if released {
        // Hand queued work back to siblings, then shelve the deque (its
        // stealer stays valid — the object is reused on re-spawn).
        let mut n = 0;
        while let Some(t) = local.pop() {
            shared.injector.push(t);
            n += 1;
        }
        if n > 0 {
            shared.wake_workers(n);
        }
        let mut parked = shared.parked.lock();
        parked.deques.insert(index, local);
        shared.parked_cv.notify_all();
    }
}

fn run_task(shared: &Arc<PoolShared>, task: Task, index: usize) {
    let Task {
        name,
        body,
        completion,
    } = task;
    let t0 = shared.lg.now_ns();
    shared.lg.emit(&Event::TaskBegin {
        task: name,
        worker: index,
        t_ns: t0,
    });
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body.invoke()));
    let t1 = shared.lg.now_ns();
    shared.lg.emit(&Event::TaskEnd {
        task: name,
        worker: index,
        t_ns: t1,
        elapsed_ns: t1.saturating_sub(t0),
    });
    shared.c_executed.inc();
    let panicked = result.is_err();
    if panicked {
        shared.panics.fetch_add(1, Ordering::Relaxed);
    }
    shared.finish_task();
    // Completion hooks run last, after the task is fully observable.
    if let Some(c) = completion {
        c.run(panicked);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cap.wake_all();
        {
            let _g = self.shared.idle_lock.lock();
            self.shared.idle_cv.notify_all();
        }
        {
            let _g = self.shared.parked.lock();
            self.shared.parked_cv.notify_all();
        }
        let handles: Vec<_> = self
            .shared
            .handles
            .lock()
            .iter_mut()
            .map(Option::take)
            .collect();
        for h in handles.into_iter().flatten() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers())
            .field("cap", &self.shared.cap.current())
            .field("pending", &self.pending())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn pool(workers: usize) -> ThreadPool {
        let lg = LookingGlass::builder().build();
        ThreadPool::new(
            lg,
            PoolConfig {
                workers,
                spin_rounds: 4,
                register_knobs: true,
                faults: None,
            },
        )
    }

    #[test]
    fn runs_spawned_tasks() {
        let p = pool(2);
        let count = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = count.clone();
            p.spawn_named("inc", move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        p.wait_idle();
        assert_eq!(count.load(Ordering::Relaxed), 100);
        assert_eq!(p.counters().counter("rt.executed").get(), 100);
    }

    #[test]
    fn scheduling_counters_are_striped() {
        let p = pool(2);
        for name in [
            "rt.spawned",
            "rt.executed",
            "rt.steals",
            "rt.parks",
            "rt.inline_tasks",
            "rt.boxed_tasks",
            "rt.batch_spawns",
            "rt.lifo_hits",
            "rt.priority_pushes",
        ] {
            assert!(p.counters().counter(name).is_striped(), "{name}");
        }
        // Fault counters fire rarely and stay single-cell.
        assert!(!p.counters().counter("rt.injected_panics").is_striped());
    }

    #[test]
    fn small_closures_are_counted_inline() {
        let p = pool(2);
        for _ in 0..50 {
            p.spawn_named("small", || {});
        }
        p.wait_idle();
        assert_eq!(p.counters().counter("rt.inline_tasks").get(), 50);
        assert_eq!(p.counters().counter("rt.boxed_tasks").get(), 0);
    }

    #[test]
    fn oversized_closures_are_counted_boxed() {
        let p = pool(2);
        let big = [0u8; 128];
        p.spawn_named("big", move || {
            std::hint::black_box(big);
        });
        p.wait_idle();
        assert_eq!(p.counters().counter("rt.boxed_tasks").get(), 1);
    }

    #[test]
    fn join_handle_returns_value() {
        let p = pool(2);
        let h = p.spawn("answer", || 6 * 7);
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn worker_joining_its_own_child_does_not_deadlock() {
        // The child lands in the parent's LIFO slot; the helping join must
        // find it there even on a single-worker pool.
        let p = Arc::new(pool(1));
        let p2 = p.clone();
        let h = p.spawn("parent", move || {
            let child = p2.spawn("child", || 21u64);
            child.join().unwrap() * 2
        });
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let p = pool(4);
        let n = 2000;
        let hits: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        for i in 0..n {
            let hits = hits.clone();
            p.spawn_named("once", move || {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        p.wait_idle();
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::Relaxed),
                1,
                "task {i} ran a wrong number of times"
            );
        }
    }

    #[test]
    fn spawn_batch_runs_every_chunk() {
        let p = pool(2);
        let n = 1000usize;
        let hits: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let h = hits.clone();
        let chunks = p.spawn_batch("batch", 0..n, 64, move |start, end| {
            for i in start..end {
                h[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(chunks, n.div_ceil(64));
        p.wait_idle();
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
        assert_eq!(p.counters().counter("rt.batch_spawns").get(), 1);
        // (Arc, start, end) captures fit the inline budget exactly.
        assert_eq!(
            p.counters().counter("rt.inline_tasks").get() as usize,
            chunks
        );
        assert_eq!(p.counters().counter("rt.boxed_tasks").get(), 0);
    }

    #[test]
    fn empty_spawn_batch_is_a_noop() {
        let p = pool(1);
        assert_eq!(p.spawn_batch("none", 5..5, 8, |_, _| {}), 0);
        assert_eq!(p.counters().counter("rt.batch_spawns").get(), 0);
        p.wait_idle();
    }

    #[test]
    fn lifo_slot_is_used_for_worker_spawns() {
        let p = Arc::new(pool(1));
        let p2 = p.clone();
        let count = Arc::new(AtomicU64::new(0));
        let c = count.clone();
        p.spawn_named("parent", move || {
            let c = c.clone();
            p2.spawn_named("child", move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        });
        p.wait_idle();
        assert_eq!(count.load(Ordering::Relaxed), 1);
        assert!(
            p.counters().counter("rt.lifo_hits").get() >= 1,
            "worker-spawned child should be served from the LIFO slot"
        );
    }

    #[test]
    fn panicking_task_is_contained() {
        let p = pool(2);
        let h = p.spawn("boom", || panic!("intentional"));
        assert!(h.join().is_err());
        // Pool still works afterwards.
        let h2 = p.spawn("after", || 1);
        assert_eq!(h2.join().unwrap(), 1);
        // join() wakes before the worker finishes its own bookkeeping;
        // quiesce before reading the panic counter.
        p.wait_idle();
        assert_eq!(p.panics(), 1);
    }

    #[test]
    fn tasks_spawned_from_tasks_run() {
        let p = Arc::new(pool(2));
        let count = Arc::new(AtomicU64::new(0));
        let shared = p.shared().clone();
        let c = count.clone();
        let lg = p.lg().clone();
        p.spawn_named("parent", move || {
            for _ in 0..10 {
                let c = c.clone();
                let id = lg.intern("child");
                shared.push(crate::task::Task::new(
                    id,
                    TaskBody::new(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    }),
                ));
            }
        });
        p.wait_idle();
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn profiles_observe_tasks() {
        let p = pool(2);
        for _ in 0..5 {
            p.spawn_named("profiled", || {
                std::hint::black_box((0..1000).sum::<u64>());
            });
        }
        p.wait_idle();
        let prof = p.lg().profiles().get("profiled").unwrap();
        assert_eq!(prof.count, 5);
        assert_eq!(prof.active, 0);
        assert!(prof.mean_ns > 0.0);
    }

    #[test]
    fn thread_cap_knob_registered() {
        let p = pool(4);
        assert_eq!(p.lg().knobs().value("thread_cap"), Some(4));
        p.lg().knobs().set("thread_cap", 2);
        assert_eq!(p.thread_cap().current(), 2);
    }

    #[test]
    fn throttled_pool_still_completes_work() {
        let p = pool(4);
        p.thread_cap().set_cap(1);
        let count = Arc::new(AtomicU64::new(0));
        for _ in 0..200 {
            let c = count.clone();
            p.spawn_named("t", move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        p.wait_idle();
        assert_eq!(count.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn cap_changes_mid_stream_lose_nothing() {
        let p = pool(4);
        let count = Arc::new(AtomicU64::new(0));
        for burst in 0..10 {
            p.thread_cap().set_cap(1 + (burst % 4));
            for _ in 0..50 {
                let c = count.clone();
                p.spawn_named("t", move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        p.wait_idle();
        assert_eq!(count.load(Ordering::Relaxed), 500);
    }

    /// Spin until `resident_workers()` reaches `want` (bounded).
    fn wait_resident(p: &ThreadPool, want: usize) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while p.resident_workers() != want && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(
            p.resident_workers(),
            want,
            "resident worker count did not converge"
        );
    }

    #[test]
    fn budget_shrink_releases_os_threads_and_grow_respawns() {
        let p = pool(4);
        assert_eq!(p.resident_workers(), 4);
        // Shrink through the knob path — the same write an arbiter makes.
        p.lg().knobs().set("thread_budget", 1);
        wait_resident(&p, 1);
        // The shrunken pool still completes work.
        let count = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = count.clone();
            p.spawn_named("t", move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        p.wait_idle();
        assert_eq!(count.load(Ordering::Relaxed), 100);
        // Grow back: threads re-spawn onto their shelved deques.
        p.thread_budget().set_target(4);
        wait_resident(&p, 4);
        let h = p.spawn("after", || 7);
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn budget_changes_mid_stream_lose_nothing() {
        let p = pool(4);
        let count = Arc::new(AtomicU64::new(0));
        for burst in 0..10 {
            p.thread_budget().set_target(1 + (burst % 4));
            for _ in 0..50 {
                let c = count.clone();
                p.spawn_named("t", move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        p.wait_idle();
        assert_eq!(count.load(Ordering::Relaxed), 500);
        p.thread_budget().set_target(4);
        wait_resident(&p, 4);
    }

    #[test]
    fn drop_joins_workers_while_budget_shrunk() {
        let p = pool(3);
        p.thread_budget().set_target(1);
        wait_resident(&p, 1);
        p.spawn_named("x", || {});
        p.wait_idle();
        drop(p); // must not hang with two workers released
    }

    #[test]
    fn wait_idle_on_empty_pool_returns() {
        let p = pool(2);
        p.wait_idle();
    }

    #[test]
    fn drop_joins_workers() {
        let p = pool(3);
        p.spawn_named("x", || {});
        p.wait_idle();
        drop(p); // must not hang
    }

    #[test]
    fn injected_panics_are_contained_and_counted() {
        let lg = LookingGlass::builder().build();
        let p = ThreadPool::new(
            lg,
            PoolConfig {
                workers: 2,
                spin_rounds: 2,
                register_knobs: false,
                faults: Some(crate::fault::FaultConfig::seeded(7).panic_prob(0.5)),
            },
        );
        let count = Arc::new(AtomicU64::new(0));
        let n = 400;
        for _ in 0..n {
            let c = count.clone();
            p.spawn_named("maybe", move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        p.wait_idle();
        let crashed = p.injected_panics();
        assert!(
            crashed > 0,
            "0.5 panic prob over {n} tasks injected nothing"
        );
        assert_eq!(count.load(Ordering::Relaxed) as usize, n - crashed);
        assert_eq!(p.panics(), crashed, "every injected crash was contained");
        assert_eq!(
            p.counters().counter("rt.injected_panics").get() as usize,
            crashed
        );
        // Pool still functional.
        let h = p.spawn("after", || 3);
        assert!(matches!(h.join(), Ok(3) | Err(_)));
    }

    #[test]
    fn injected_bodies_use_the_inline_representation() {
        let lg = LookingGlass::builder().build();
        let p = ThreadPool::new(
            lg,
            PoolConfig {
                workers: 1,
                spin_rounds: 2,
                register_knobs: false,
                faults: Some(crate::fault::FaultConfig::seeded(5).panic_prob(1.0)),
            },
        );
        for _ in 0..20 {
            p.spawn_named("doomed", || {});
        }
        p.wait_idle();
        // The injected panic closure is zero-sized: inline, not boxed.
        assert_eq!(p.counters().counter("rt.inline_tasks").get(), 20);
        assert_eq!(p.counters().counter("rt.boxed_tasks").get(), 0);
    }

    #[test]
    fn crash_faulted_spawn_still_resolves_join() {
        let lg = LookingGlass::builder().build();
        let p = ThreadPool::new(
            lg,
            PoolConfig {
                workers: 2,
                spin_rounds: 2,
                register_knobs: false,
                faults: Some(crate::fault::FaultConfig::seeded(1).panic_prob(1.0)),
            },
        );
        // Every task crashes; joins must error, never hang.
        for _ in 0..50 {
            assert!(p.spawn("doomed", || 1).join().is_err());
        }
        p.wait_idle();
        assert_eq!(p.injected_panics(), 50);
    }

    #[test]
    fn stragglers_delay_but_complete() {
        let lg = LookingGlass::builder().build();
        let p = ThreadPool::new(
            lg,
            PoolConfig {
                workers: 2,
                spin_rounds: 2,
                register_knobs: false,
                faults: Some(
                    crate::fault::FaultConfig::seeded(3)
                        .straggler(1.0, std::time::Duration::from_millis(5)),
                ),
            },
        );
        let t0 = std::time::Instant::now();
        let h = p.spawn("slow", || 11);
        assert_eq!(h.join().unwrap(), 11);
        assert!(t0.elapsed() >= std::time::Duration::from_millis(5));
        assert_eq!(p.injected_stragglers(), 1);
        assert_eq!(p.counters().counter("rt.injected_stragglers").get(), 1);
        assert_eq!(p.panics(), 0);
    }

    #[test]
    fn inactive_fault_config_injects_nothing() {
        let lg = LookingGlass::builder().build();
        let p = ThreadPool::new(
            lg,
            PoolConfig {
                workers: 2,
                spin_rounds: 2,
                register_knobs: false,
                faults: Some(crate::fault::FaultConfig::seeded(9)),
            },
        );
        for _ in 0..100 {
            p.spawn_named("fine", || {});
        }
        p.wait_idle();
        assert_eq!(p.injected_panics(), 0);
        assert_eq!(p.injected_stragglers(), 0);
        assert_eq!(p.panics(), 0);
    }

    #[test]
    fn worker_events_reach_concurrency_listener() {
        let lg = LookingGlass::builder().build();
        let p = ThreadPool::new(
            lg.clone(),
            PoolConfig {
                workers: 2,
                spin_rounds: 1,
                register_knobs: false,
                faults: None,
            },
        );
        // Workers come online lazily but WorkerStart fires at thread start.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while lg.concurrency().online_workers() < 2 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(lg.concurrency().online_workers(), 2);
        drop(p);
        assert_eq!(lg.concurrency().online_workers(), 0);
    }
}
