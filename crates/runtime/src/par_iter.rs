//! `parallel_for` with a tunable chunk size — the granularity knob.
//!
//! The index range is split into chunks of `chunk` iterations; each chunk
//! is one task. Small chunks expose parallelism and balance load but pay
//! per-task scheduling overhead; large chunks amortize overhead but starve
//! workers and bunch load. The optimum depends on the body cost and the
//! worker count — which is why it is a knob ([`ThreadPool::chunk_knob`])
//! rather than a constant, and why the granularity experiment (Fig 4)
//! tunes it online.
//!
//! Since the batched-spawn rework, one `parallel_for` call issues **one**
//! injector batch push and **one** worker wake wave, and every chunk task
//! captures `(Arc<body>, start, end)` — within the inline budget, so the
//! per-chunk cost contains no allocation and no condvar round-trip. That
//! shrinks the per-task α the small-chunk penalty region of Fig 4
//! measures; see [`crate::Scope::spawn_batch`].

use crate::pool::ThreadPool;
use lg_core::knob::{AtomicKnob, KnobSpec};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Statistics returned by [`ThreadPool::parallel_for`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelForStats {
    /// Number of chunk tasks spawned.
    pub chunks: usize,
    /// Chunk size used (iterations per task, except possibly the last).
    pub chunk_size: usize,
    /// Total iterations executed.
    pub iterations: u64,
}

impl ThreadPool {
    /// Creates (and registers) an [`AtomicKnob`] named `name` that
    /// [`ThreadPool::parallel_for_knobbed`] reads for its chunk size.
    pub fn chunk_knob(&self, name: &str, min: i64, max: i64, initial: i64) -> Arc<AtomicKnob> {
        let mut spec = KnobSpec::new(name, min, max)
            .with_unit("iters")
            .with_default(initial);
        // Chunk sizes are naturally swept over powers of two.
        if min >= 1 && max >= min {
            spec = spec.with_scale(lg_core::knob::KnobScale::Pow2);
        }
        let knob = AtomicKnob::new(spec, initial);
        self.lg().knobs().register(knob.clone());
        knob
    }

    /// Runs `body(i)` for every `i` in `range`, in parallel, in chunks of
    /// `chunk` iterations. Blocks until every iteration has run.
    ///
    /// The chunk set is submitted through [`crate::Scope::spawn_batch`]:
    /// one batch push, one wake wave, zero per-chunk boxing.
    ///
    /// # Panics
    /// Panics if `chunk` is zero, or (after completion) if any body
    /// panicked.
    pub fn parallel_for<F>(
        &self,
        name: &str,
        range: std::ops::Range<usize>,
        chunk: usize,
        body: F,
    ) -> ParallelForStats
    where
        F: Fn(usize) + Send + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        let executed = AtomicU64::new(0);
        let chunks = self.scope(|s| {
            let body = &body;
            let executed = &executed;
            s.spawn_batch(name, range, chunk, move |start, end| {
                for i in start..end {
                    body(i);
                }
                executed.fetch_add((end - start) as u64, Ordering::Relaxed);
            })
        });
        ParallelForStats {
            chunks,
            chunk_size: chunk,
            iterations: executed.load(Ordering::Relaxed),
        }
    }

    /// Like [`ThreadPool::parallel_for`], but reads the chunk size from a
    /// knob at call time — the form adaptation drives.
    pub fn parallel_for_knobbed<F>(
        &self,
        name: &str,
        range: std::ops::Range<usize>,
        chunk_knob: &AtomicKnob,
        body: F,
    ) -> ParallelForStats
    where
        F: Fn(usize) + Send + Sync,
    {
        use lg_core::Knob as _;
        let chunk = chunk_knob.get().max(1) as usize;
        self.parallel_for(name, range, chunk, body)
    }

    /// Parallel fold: applies `body` to every index, combining per-chunk
    /// partial results with `combine`. `identity` seeds each chunk.
    pub fn parallel_reduce<T, F, C>(
        &self,
        name: &str,
        range: std::ops::Range<usize>,
        chunk: usize,
        identity: T,
        body: F,
        combine: C,
    ) -> T
    where
        T: Clone + Send + Sync,
        F: Fn(usize, T) -> T + Send + Sync,
        C: Fn(T, T) -> T,
    {
        assert!(chunk > 0, "chunk size must be positive");
        let partials: parking_lot::Mutex<Vec<T>> = parking_lot::Mutex::new(Vec::new());
        self.scope(|s| {
            let body = &body;
            let partials = &partials;
            let identity = &identity;
            s.spawn_batch(name, range, chunk, move |start, end| {
                let mut acc = identity.clone();
                for i in start..end {
                    acc = body(i, acc);
                }
                partials.lock().push(acc);
            });
        });
        partials.into_inner().into_iter().fold(identity, combine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use lg_core::LookingGlass;

    fn pool(workers: usize) -> ThreadPool {
        let lg = LookingGlass::builder().build();
        ThreadPool::new(
            lg,
            PoolConfig {
                workers,
                spin_rounds: 4,
                register_knobs: false,
                faults: None,
            },
        )
    }

    #[test]
    fn covers_every_index_exactly_once() {
        let p = pool(3);
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let stats = p.parallel_for("cover", 0..n, 77, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(stats.iterations, n as u64);
        assert_eq!(stats.chunks, n.div_ceil(77));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn one_batch_push_per_call_and_no_boxing() {
        let p = pool(2);
        for call in 1..=3u64 {
            p.parallel_for("batched", 0..1000, 64, |_| {});
            assert_eq!(
                p.counters().counter("rt.batch_spawns").get(),
                call,
                "each parallel_for must issue exactly one batch push"
            );
        }
        // Chunk tasks capture (Arc, start, end): inline, never boxed.
        assert_eq!(p.counters().counter("rt.boxed_tasks").get(), 0);
        assert_eq!(
            p.counters().counter("rt.inline_tasks").get() as usize,
            3 * 1000usize.div_ceil(64)
        );
    }

    #[test]
    fn empty_range_is_a_noop() {
        let p = pool(2);
        let stats = p.parallel_for("empty", 5..5, 10, |_| panic!("must not run"));
        assert_eq!(stats.chunks, 0);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn chunk_larger_than_range() {
        let p = pool(2);
        let count = AtomicU64::new(0);
        let stats = p.parallel_for("big-chunk", 0..10, 1000, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(stats.chunks, 1);
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        let p = pool(1);
        p.parallel_for("bad", 0..10, 0, |_| {});
    }

    #[test]
    fn knobbed_variant_reads_knob() {
        let p = pool(2);
        let knob = p.chunk_knob("chunk", 1, 4096, 128);
        let stats = p.parallel_for_knobbed("k", 0..1000, &knob, |_| {});
        assert_eq!(stats.chunk_size, 128);
        use lg_core::Knob as _;
        knob.set(500);
        let stats = p.parallel_for_knobbed("k", 0..1000, &knob, |_| {});
        assert_eq!(stats.chunk_size, 500);
        assert_eq!(stats.chunks, 2);
    }

    #[test]
    fn knob_is_registered_on_instance() {
        let p = pool(1);
        let _ = p.chunk_knob("my_chunk", 1, 100, 10);
        assert_eq!(p.lg().knobs().value("my_chunk"), Some(10));
        p.lg().knobs().set("my_chunk", 64);
    }

    #[test]
    fn reduce_sums_correctly() {
        let p = pool(3);
        let total = p.parallel_reduce(
            "sum",
            0..1001,
            64,
            0u64,
            |i, acc| acc + i as u64,
            |a, b| a + b,
        );
        assert_eq!(total, 1000 * 1001 / 2);
    }

    #[test]
    fn reduce_with_single_chunk() {
        let p = pool(2);
        let total = p.parallel_reduce(
            "sum1",
            0..5,
            100,
            0u64,
            |i, acc| acc + i as u64,
            |a, b| a + b,
        );
        assert_eq!(total, 10);
    }

    #[test]
    fn reduce_empty_range_is_identity() {
        let p = pool(2);
        let total = p.parallel_reduce("sum0", 3..3, 4, 99u64, |_, acc| acc, |a, _b| a);
        assert_eq!(total, 99);
    }

    #[test]
    fn profile_counts_chunks_not_iterations() {
        let p = pool(2);
        p.parallel_for("profiled_chunks", 0..100, 10, |_| {});
        assert_eq!(p.lg().profiles().get("profiled_chunks").unwrap().count, 10);
    }
}
