//! Live worker-count resizing: the thread-budget knob.
//!
//! [`crate::ThreadCap`] *throttles* — an excluded worker parks on a
//! condvar, but its OS thread stays resident, so the capacity it gives up
//! cannot be handed to a sibling pool. [`ThreadBudget`] *releases*: a
//! worker whose index falls outside the budget drains its LIFO slot and
//! local deque back into the injector, hands its deque to the pool's
//! parking shelf, and lets its OS thread exit. Raising the budget
//! re-spawns workers onto their shelved deques (the stealers stay valid
//! throughout because the deque object itself is reused).
//!
//! This is what makes cross-tenant thread reallocation by the
//! [`lg_core::Arbiter`] real: shrinking one tenant's budget returns
//! actual OS threads to the machine, not just idle parked ones.
//!
//! The budget implements [`lg_core::Knob`] (name `"thread_budget"`), so
//! an external owner — an arbiter, a policy, a tuning session — resizes
//! the pool through the same journaled write path as every other
//! actuation. A budget write is asynchronous on the shrink side (workers
//! exit at their next scheduling decision; tasks are never interrupted
//! mid-body) and synchronous-best-effort on the grow side (the setter
//! re-spawns workers whose deques are already shelved and waits briefly
//! for stragglers).

use crate::pool::PoolShared;
use lg_core::{Knob, KnobSpec};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

/// Shared thread-budget state. Cloning shares the budget.
#[derive(Clone)]
pub struct ThreadBudget {
    inner: Arc<BudgetInner>,
}

struct BudgetInner {
    /// Desired resident worker count; workers with index ≥ target exit.
    target: AtomicUsize,
    max: usize,
    /// Back-reference to the pool, set once at pool construction, so a
    /// knob write can trigger release wakes and re-spawns.
    shared: Mutex<Weak<PoolShared>>,
    /// Budget changes so far (lets tests and reports observe sets).
    generation: AtomicUsize,
}

impl ThreadBudget {
    /// Creates a budget over `max` workers, initially fully resident.
    ///
    /// # Panics
    /// Panics if `max` is zero.
    pub fn new(max: usize) -> Self {
        assert!(max > 0, "pool must have at least one worker");
        Self {
            inner: Arc::new(BudgetInner {
                target: AtomicUsize::new(max),
                max,
                shared: Mutex::new(Weak::new()),
                generation: AtomicUsize::new(0),
            }),
        }
    }

    /// Current target resident worker count.
    pub fn target(&self) -> usize {
        self.inner.target.load(Ordering::Acquire)
    }

    /// Maximum (pool size).
    pub fn max(&self) -> usize {
        self.inner.max
    }

    /// Budget changes so far.
    pub fn generation(&self) -> usize {
        self.inner.generation.load(Ordering::Acquire)
    }

    /// True if worker `index` may stay resident under the current budget.
    #[inline]
    pub fn allows(&self, index: usize) -> bool {
        index < self.target()
    }

    /// Sets the target, clamped to `1..=max`, then wakes excess workers
    /// so they release their threads and re-spawns any missing ones.
    pub fn set_target(&self, target: usize) {
        let clamped = target.clamp(1, self.inner.max);
        self.inner.target.store(clamped, Ordering::Release);
        self.inner.generation.fetch_add(1, Ordering::Release);
        let shared = self.inner.shared.lock().upgrade();
        if let Some(shared) = shared {
            shared.apply_budget();
        }
    }

    /// Wires the back-reference; called once by the pool constructor.
    pub(crate) fn attach(&self, shared: &Arc<PoolShared>) {
        *self.inner.shared.lock() = Arc::downgrade(shared);
    }

    /// A live worker-count closure for consumers that must track budget
    /// writes between their own evaluations — e.g.
    /// `CriticalPathPolicy::with_workers_source`, whose width-vs-workers
    /// control law would otherwise compare the DAG's frontier against a
    /// pool size the arbiter shrank two rounds ago.
    pub fn workers_source(&self) -> Arc<dyn Fn() -> i64 + Send + Sync> {
        let budget = self.clone();
        Arc::new(move || budget.target() as i64)
    }
}

impl Knob for ThreadBudget {
    fn spec(&self) -> KnobSpec {
        KnobSpec::new("thread_budget", 1, self.inner.max as i64)
            .with_unit("workers")
            .with_default(self.inner.max as i64)
    }
    fn get(&self) -> i64 {
        self.target() as i64
    }
    fn set(&self, value: i64) {
        self.set_target(value.max(1) as usize);
    }
}

impl std::fmt::Debug for ThreadBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadBudget")
            .field("target", &self.target())
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_fully_resident() {
        let b = ThreadBudget::new(4);
        assert_eq!(b.target(), 4);
        assert!(b.allows(3));
    }

    #[test]
    fn set_clamps_to_bounds() {
        let b = ThreadBudget::new(4);
        b.set_target(0);
        assert_eq!(b.target(), 1, "budget must never reach zero");
        b.set_target(100);
        assert_eq!(b.target(), 4);
    }

    #[test]
    fn knob_interface() {
        let b = ThreadBudget::new(8);
        let spec = b.spec();
        assert_eq!(spec.name, "thread_budget");
        assert_eq!(spec.min, 1);
        assert_eq!(spec.max, 8);
        assert_eq!(spec.default, 8);
        b.set(3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn clones_share_state_and_generation_tracks() {
        let a = ThreadBudget::new(4);
        let b = a.clone();
        assert_eq!(a.generation(), 0);
        a.set_target(2);
        assert_eq!(b.target(), 2);
        assert_eq!(b.generation(), 1);
    }

    #[test]
    fn workers_source_tracks_budget_writes() {
        let b = ThreadBudget::new(16);
        let src = b.workers_source();
        assert_eq!(src(), 16);
        b.set_target(5);
        assert_eq!(src(), 5, "source must read the live target, not a copy");
    }

    #[test]
    fn critical_path_policy_follows_the_governed_budget() {
        use lg_core::dag::DagStats;
        use lg_core::policy::Trigger;
        use lg_core::snapshot::Introspection;
        use lg_core::Policy;

        // A frontier of ~65 ready nodes with rich slack: abundant for a
        // 4-worker pool (bias off), scarce once the arbiter grows the
        // budget to 32 (bias back on). The policy must see the *live*
        // budget, not its construction-time worker count.
        let names = lg_core::TaskNames::new();
        let profiles = Arc::new(lg_core::ProfileListener::new(names.clone()));
        let concurrency = Arc::new(lg_core::ConcurrencyListener::new(64));
        let intro = Introspection::new(profiles, concurrency);
        let stats = DagStats::new();
        stats.register_on(&intro);
        stats.on_release(1 << 20);
        for _ in 0..64 {
            stats.on_release(8);
        }
        let snap = intro.capture(1);

        let budget = ThreadBudget::new(32);
        budget.set_target(4);
        let mut policy = lg_core::CriticalPathPolicy::new("dag.critical_bias", 9999)
            .with_workers_source(budget.workers_source());
        let d = policy.evaluate(1, Trigger::Periodic, &snap);
        assert_eq!(d.sets, vec![("dag.critical_bias".into(), 0)]);

        budget.set_target(32);
        let d2 = policy.evaluate(2, Trigger::Periodic, &snap);
        assert_eq!(d2.sets, vec![("dag.critical_bias".into(), 1)]);
    }
}
