//! Dependency-tracking spawn surface: DAG scopes.
//!
//! `pool.dag_scope(|g| { let a = g.spawn_after("a", &[], ...); g.spawn_after("b", &[a], ...) })`
//! runs a dependency graph on the pool. Each node carries an atomic
//! **remaining-dependency counter**; completing a task walks its
//! successor list and decrements, and the decrement that observes the
//! last dependency (`1 → 0`) takes the successor's pre-built task out of
//! its node and enqueues it. There is **no polling** — a node is touched
//! exactly once per dependency edge plus once to enqueue — and the
//! release path performs **no allocation**: the task record was built at
//! `spawn_after` time (inline-body rules from [`crate::task`] apply
//! unchanged), so promotion is a pointer move into the LIFO slot, deque,
//! or injector.
//!
//! ## Two-level priority
//!
//! A node spawned with [`DagHint::critical`] takes the **priority lane**
//! when released: on a worker it lands in that worker's LIFO slot (runs
//! next, caches hot; a displaced occupant moves to the *front* of the
//! local deque), from outside it enters the injector at the steal end.
//! Off-path nodes take the normal steal path. The lane is gated by the
//! pool's `dag.critical_bias` knob, so a policy
//! ([`lg_core::dag::CriticalPathPolicy`]) can turn the bias off when the
//! DAG offers abundant width.
//!
//! ## Dep-counter protocol
//!
//! Every counter starts at `deps + 1`: the extra **wiring guard** keeps
//! the node unreleasable while its edges are being attached. For each
//! dependency, `spawn_after` locks the predecessor's successor list; if
//! the predecessor has not completed it adds the edge (counter +1 under
//! the same lock the completer will take), otherwise the dependency is
//! already satisfied and contributes nothing. Dropping the wiring guard
//! goes through the same `1 → 0` release path, so a node whose
//! dependencies all completed during wiring (or that has none) is
//! enqueued right there. Completion marks the successor list `done`
//! before draining it, so late edges to a completed predecessor are
//! never lost — they simply never get added.
//!
//! ## Safety
//!
//! Bodies may borrow from the enclosing stack frame (`'scope`), with the
//! same barrier argument as [`crate::scope`]: `dag_scope` does not return
//! until every node's completion has dropped, and a completion drops only
//! after the worker is done with the body. The task cell inside a node is
//! written once by the spawning thread while the wiring guard (counter
//! ≥ 1) makes the node unreleasable, and taken once by the unique thread
//! that observes the `1 → 0` transition; the `AcqRel` counter chain
//! orders the write before the take.
//!
//! Panic semantics match `scope`: a panicking node still releases its
//! successors (the DAG keeps draining — crashed-node successors must not
//! leak, which is also what keeps fault-injection runs exactly-once), and
//! `dag_scope` re-throws after the barrier.

use crate::pool::ThreadPool;
use crate::scope::Completion;
use crate::task::{Task, TaskBody};
use lg_core::dag::DagStats;
use parking_lot::{Condvar, Mutex, RwLock};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Identifies a node within one [`DagScope`]. Returned by
/// [`DagScope::spawn_after`] and passed as a dependency to later spawns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DagNodeId(u32);

/// Scheduling hints for a DAG node.
#[derive(Clone, Copy, Debug, Default)]
pub struct DagHint {
    /// Route this node through the priority lane when it becomes ready
    /// (LIFO slot / front-of-queue), subject to the `dag.critical_bias`
    /// knob. Mark nodes on (or near) the critical path.
    pub critical: bool,
    /// Estimated downstream cost including this node (the upward rank),
    /// in nanoseconds of any consistent cost model. Feeds the `dag.*`
    /// introspection gauges when the scope carries a [`DagStats`].
    pub height_ns: u64,
}

impl DagHint {
    /// A critical-path hint with the given height.
    pub fn critical(height_ns: u64) -> Self {
        Self {
            critical: true,
            height_ns,
        }
    }

    /// An off-path hint with the given height.
    pub fn normal(height_ns: u64) -> Self {
        Self {
            critical: false,
            height_ns,
        }
    }
}

struct SuccList {
    /// Set before the list is drained; edges to a `done` predecessor are
    /// already satisfied and are never recorded.
    done: bool,
    list: Vec<u32>,
}

struct NodeState {
    /// Unmet dependencies + 1 wiring guard (see module docs).
    remaining: AtomicUsize,
    /// The pre-built task, written once during wiring, taken once on the
    /// `1 → 0` transition.
    task: UnsafeCell<Option<Task>>,
    succs: Mutex<SuccList>,
    critical: bool,
    height_ns: u64,
}

// SAFETY: the `task` cell is the only non-Sync field; it is written by
// the wiring thread while the wiring guard keeps `remaining` ≥ 1 and
// taken by the single thread that observes the `1 → 0` transition of
// `remaining` — never two threads at once (see module docs).
unsafe impl Sync for NodeState {}
// SAFETY: `Task` is moved between threads by the pool's queues already;
// the cell adds no thread affinity.
unsafe impl Send for NodeState {}

pub(crate) struct DagInner {
    pool: Arc<crate::pool::PoolShared>,
    nodes: RwLock<Vec<NodeState>>,
    /// Nodes spawned and not yet completed (the scope barrier).
    remaining_nodes: AtomicUsize,
    panicked: AtomicUsize,
    /// Nodes whose dependency count reached zero and whose task was
    /// enqueued (diagnostics; equals the node count once drained).
    released: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
    stats: Option<Arc<DagStats>>,
}

impl DagInner {
    /// Drops one dependency of `succ`; the caller must hold the node
    /// table's read guard. The decrement that hits zero takes the task
    /// and enqueues it — the no-polling promotion point.
    fn complete_dep(&self, nodes: &[NodeState], succ: u32) {
        let n = &nodes[succ as usize];
        if n.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // SAFETY: unique `1 → 0` observer; the write to the cell
            // happened before the wiring guard was dropped and is ordered
            // by the AcqRel counter chain.
            let task = unsafe { (*n.task.get()).take() }.expect("released node carries a task");
            self.released.fetch_add(1, Ordering::Relaxed);
            if let Some(st) = &self.stats {
                st.on_release(n.height_ns);
            }
            if n.critical {
                self.pool.push_priority(task);
            } else {
                self.pool.push(task);
            }
        }
    }

    /// Called (via [`DagCompletion`]) when a node's body has run or been
    /// discarded: releases its successors, then drops the scope barrier.
    fn complete_node(&self, node: u32) {
        {
            let nodes = self.nodes.read();
            let me = &nodes[node as usize];
            if let Some(st) = &self.stats {
                st.on_complete(me.height_ns);
            }
            let succs = {
                let mut sl = me.succs.lock();
                sl.done = true;
                std::mem::take(&mut sl.list)
            };
            for s in succs {
                self.complete_dep(&nodes, s);
            }
        }
        if self.remaining_nodes.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.lock.lock();
            self.cv.notify_all();
        }
    }
}

/// A DAG task's completion hook: releases successors and decrements the
/// scope barrier from `Drop`, so a task discarded at shutdown still
/// unblocks its scope.
pub(crate) struct DagCompletion {
    dag: Arc<DagInner>,
    node: u32,
}

impl DagCompletion {
    pub(crate) fn run(self, panicked: bool) {
        if panicked {
            self.dag.panicked.fetch_add(1, Ordering::AcqRel);
        }
    }
}

impl Drop for DagCompletion {
    fn drop(&mut self) {
        self.dag.complete_node(self.node);
    }
}

/// Spawn surface handed to the [`ThreadPool::dag_scope`] closure.
pub struct DagScope<'scope, 'pool> {
    pool: &'pool ThreadPool,
    inner: Arc<DagInner>,
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> DagScope<'scope, '_> {
    /// Spawns a node that runs once every node in `deps` has completed
    /// (immediately, if `deps` is empty or all have already finished).
    /// Dependencies must be nodes of this scope spawned earlier —
    /// enforced by the id ordering, which is also what makes cycles
    /// unrepresentable.
    pub fn spawn_after<F>(&self, name: &str, deps: &[DagNodeId], body: F) -> DagNodeId
    where
        F: FnOnce() + Send + 'scope,
    {
        self.spawn_after_hinted(name, deps, DagHint::default(), body)
    }

    /// [`DagScope::spawn_after`] with scheduling hints.
    pub fn spawn_after_hinted<F>(
        &self,
        name: &str,
        deps: &[DagNodeId],
        hint: DagHint,
        body: F,
    ) -> DagNodeId
    where
        F: FnOnce() + Send + 'scope,
    {
        let dag = &self.inner;
        dag.remaining_nodes.fetch_add(1, Ordering::AcqRel);
        let id = {
            let mut nodes = dag.nodes.write();
            let id = u32::try_from(nodes.len()).expect("dag node count fits u32");
            nodes.push(NodeState {
                remaining: AtomicUsize::new(1), // the wiring guard
                task: UnsafeCell::new(None),
                succs: Mutex::new(SuccList {
                    done: false,
                    list: Vec::new(),
                }),
                critical: hint.critical,
                height_ns: hint.height_ns,
            });
            id
        };
        let tid = self.pool.lg().intern(name);
        // SAFETY: the dag barrier — `dag_scope()` blocks until this
        // node's completion has dropped; see module docs.
        let body = unsafe { TaskBody::new_unchecked(body) };
        let task = Task::with_completion(
            tid,
            body,
            Completion::Dag(DagCompletion {
                dag: dag.clone(),
                node: id,
            }),
        );
        let nodes = dag.nodes.read();
        let me = &nodes[id as usize];
        // SAFETY: sole writer — the wiring guard keeps `remaining` ≥ 1,
        // so no thread can reach the cell-taking release path yet.
        unsafe { *me.task.get() = Some(task) };
        for d in deps {
            assert!(d.0 < id, "dependencies must be earlier nodes of this scope");
            let mut sl = nodes[d.0 as usize].succs.lock();
            if !sl.done {
                // Counter +1 under the predecessor's list lock: its
                // completer drains the list only after taking this lock,
                // so it cannot miss the edge or double-release.
                me.remaining.fetch_add(1, Ordering::AcqRel);
                sl.list.push(id);
            }
        }
        // Drop the wiring guard; releases the node now if nothing is
        // (still) pending.
        dag.complete_dep(&nodes, id);
        DagNodeId(id)
    }

    /// Nodes spawned on this scope so far.
    pub fn node_count(&self) -> usize {
        self.inner.nodes.read().len()
    }

    /// Nodes whose dependency count reached zero and whose task entered
    /// the pool (diagnostics; equals `node_count` once the scope drains).
    pub fn released(&self) -> usize {
        self.inner.released.load(Ordering::Relaxed)
    }
}

impl ThreadPool {
    /// Runs `f` with a [`DagScope`]; returns once every spawned node has
    /// completed.
    ///
    /// # Panics
    /// Re-throws if any node's body panicked (after the whole DAG
    /// drained — a crashed node still releases its successors).
    pub fn dag_scope<'scope, R>(&self, f: impl FnOnce(&DagScope<'scope, '_>) -> R) -> R {
        self.dag_scope_inner(None, f)
    }

    /// [`ThreadPool::dag_scope`] with release/completion accounting
    /// folded into `stats` (register it on an introspection facade to get
    /// the `dag.critical_path_len` / `dag.ready_width` / `dag.slack_p50`
    /// gauges).
    pub fn dag_scope_observed<'scope, R>(
        &self,
        stats: Arc<DagStats>,
        f: impl FnOnce(&DagScope<'scope, '_>) -> R,
    ) -> R {
        self.dag_scope_inner(Some(stats), f)
    }

    fn dag_scope_inner<'scope, R>(
        &self,
        stats: Option<Arc<DagStats>>,
        f: impl FnOnce(&DagScope<'scope, '_>) -> R,
    ) -> R {
        let inner = Arc::new(DagInner {
            pool: self.shared().clone(),
            nodes: RwLock::new(Vec::new()),
            remaining_nodes: AtomicUsize::new(0),
            panicked: AtomicUsize::new(0),
            released: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            stats,
        });
        let scope = DagScope {
            pool: self,
            inner: inner.clone(),
            _marker: std::marker::PhantomData,
        };
        let result = f(&scope);
        // Same helping barrier as `ThreadPool::scope`.
        while inner.remaining_nodes.load(Ordering::Acquire) != 0 {
            if self.shared().try_help() {
                continue;
            }
            let mut g = inner.lock.lock();
            if inner.remaining_nodes.load(Ordering::Acquire) == 0 {
                break;
            }
            inner
                .cv
                .wait_for(&mut g, std::time::Duration::from_millis(1));
        }
        let panics = inner.panicked.load(Ordering::Acquire);
        if panics > 0 {
            panic!("{panics} dag node(s) panicked");
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use lg_core::LookingGlass;
    use std::sync::atomic::AtomicU64;

    fn pool(workers: usize) -> ThreadPool {
        let lg = LookingGlass::builder().build();
        ThreadPool::new(
            lg,
            PoolConfig {
                workers,
                spin_rounds: 4,
                register_knobs: false,
                faults: None,
            },
        )
    }

    #[test]
    fn chain_runs_in_dependency_order() {
        let p = pool(4);
        let seq = Mutex::new(Vec::new());
        p.dag_scope(|g| {
            let mut prev: Option<DagNodeId> = None;
            for i in 0..20u32 {
                let seq = &seq;
                let deps: Vec<_> = prev.into_iter().collect();
                prev = Some(g.spawn_after("link", &deps, move || {
                    seq.lock().push(i);
                }));
            }
        });
        assert_eq!(*seq.lock(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn diamond_joins_before_sink() {
        let p = pool(4);
        let order = Mutex::new(Vec::new());
        p.dag_scope(|g| {
            let o = &order;
            let a = g.spawn_after("a", &[], move || o.lock().push("a"));
            let b = g.spawn_after("b", &[a], move || o.lock().push("b"));
            let c = g.spawn_after("c", &[a], move || o.lock().push("c"));
            g.spawn_after("d", &[b, c], move || o.lock().push("d"));
        });
        let seq = order.lock();
        assert_eq!(seq[0], "a");
        assert_eq!(seq[3], "d");
        assert_eq!(seq.len(), 4);
    }

    #[test]
    fn roots_release_immediately_and_borrow_stack() {
        let p = pool(2);
        let data: Vec<u64> = (0..100).collect();
        let sum = AtomicU64::new(0);
        p.dag_scope(|g| {
            for chunk in data.chunks(10) {
                let sum = &sum;
                g.spawn_after("root", &[], move || {
                    sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    fn dependency_on_already_completed_node() {
        let p = pool(2);
        let hits = AtomicU64::new(0);
        p.dag_scope(|g| {
            let a = g.spawn_after("a", &[], || {});
            // Let `a` finish so the edge below attaches to a done node.
            while g.released() == 0 {
                std::thread::yield_now();
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
            let hits = &hits;
            g.spawn_after("b", &[a], move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn duplicate_dependencies_are_consistent() {
        let p = pool(2);
        let hits = AtomicU64::new(0);
        p.dag_scope(|g| {
            let a = g.spawn_after("a", &[], || {});
            let hits = &hits;
            g.spawn_after("b", &[a, a], move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn critical_nodes_count_priority_pushes() {
        let p = pool(2);
        p.dag_scope(|g| {
            let a = g.spawn_after_hinted("a", &[], DagHint::critical(100), || {});
            g.spawn_after_hinted("b", &[a], DagHint::critical(50), || {});
            g.spawn_after("c", &[a], || {});
        });
        assert_eq!(p.counters().counter("rt.priority_pushes").get(), 2);
    }

    #[test]
    fn bias_knob_off_disables_priority_lane() {
        use lg_core::Knob;
        let p = pool(2);
        p.dag_bias_knob().set(0);
        p.dag_scope(|g| {
            g.spawn_after_hinted("a", &[], DagHint::critical(100), || {});
        });
        assert_eq!(p.counters().counter("rt.priority_pushes").get(), 0);
    }

    #[test]
    #[should_panic(expected = "dag node(s) panicked")]
    fn panicking_node_still_releases_successors() {
        let p = pool(2);
        let ran = Arc::new(AtomicU64::new(0));
        let r = ran.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.dag_scope(|g| {
                let a = g.spawn_after("boom", &[], || panic!("boom"));
                let r = r.clone();
                g.spawn_after("after", &[a], move || {
                    r.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        // The successor of the crashed node still ran.
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        std::panic::resume_unwind(result.unwrap_err());
    }

    #[test]
    fn stats_observe_release_and_completion() {
        let s = DagStats::new();
        let p = pool(2);
        p.dag_scope_observed(s.clone(), |g| {
            let a = g.spawn_after_hinted("a", &[], DagHint::critical(1_000), || {});
            g.spawn_after_hinted("b", &[a], DagHint::normal(500), || {});
        });
        // Drained: everything released and completed.
        assert_eq!(s.ready_width(), 0.0);
        assert_eq!(s.critical_path_ns(), 0.0);
        assert!(s.slack_p50_ns() >= 0.0);
    }

    #[test]
    fn sequential_dags_reuse_pool() {
        let p = pool(3);
        for _ in 0..5 {
            let count = AtomicU64::new(0);
            p.dag_scope(|g| {
                let c = &count;
                let roots: Vec<_> = (0..4)
                    .map(|_| {
                        g.spawn_after("r", &[], move || {
                            c.fetch_add(1, Ordering::Relaxed);
                        })
                    })
                    .collect();
                g.spawn_after("sink", &roots, move || {
                    c.fetch_add(10, Ordering::Relaxed);
                });
            });
            assert_eq!(count.load(Ordering::Relaxed), 14);
        }
    }

    #[test]
    fn wide_dag_completes_on_many_workers() {
        let p = pool(8);
        let count = Arc::new(AtomicU64::new(0));
        p.dag_scope(|g| {
            let mut level: Vec<DagNodeId> = Vec::new();
            for _ in 0..6 {
                let mut next = Vec::new();
                for i in 0..32usize {
                    let deps: Vec<_> = level
                        .iter()
                        .copied()
                        .skip(i.saturating_sub(1))
                        .take(2)
                        .collect();
                    let count = count.clone();
                    next.push(g.spawn_after("n", &deps, move || {
                        count.fetch_add(1, Ordering::Relaxed);
                    }));
                }
                level = next;
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 6 * 32);
    }
}
