//! Concurrency throttling: the thread-cap knob.
//!
//! The cap is the number of workers allowed to execute tasks. Workers with
//! index ≥ cap park at their next scheduling decision and wake when the cap
//! rises — tasks are never interrupted mid-body, so a cap change is always
//! safe. The cap implements [`lg_core::Knob`], which is how policies and
//! tuning sessions drive it without knowing about the pool.
//!
//! **Drain rule:** a worker parking under the cap first evicts its LIFO
//! slot into the global injector (the slot, unlike the deque, is not
//! stealable), so lowering the cap can never strand a queued task behind a
//! parked worker. See the pool's worker loop.

use lg_core::{Knob, KnobSpec};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared thread-cap state. Cloning shares the cap.
#[derive(Clone)]
pub struct ThreadCap {
    inner: Arc<CapInner>,
}

struct CapInner {
    cap: AtomicUsize,
    max: usize,
    /// Condvar workers park on when throttled; `set` notifies it.
    lock: Mutex<()>,
    cv: Condvar,
    /// Generation counter bumped on every change (lets tests observe sets).
    generation: AtomicUsize,
}

impl ThreadCap {
    /// Creates a cap over `max` workers, initially fully open.
    ///
    /// # Panics
    /// Panics if `max` is zero.
    pub fn new(max: usize) -> Self {
        assert!(max > 0, "pool must have at least one worker");
        Self {
            inner: Arc::new(CapInner {
                cap: AtomicUsize::new(max),
                max,
                lock: Mutex::new(()),
                cv: Condvar::new(),
                generation: AtomicUsize::new(0),
            }),
        }
    }

    /// Current cap.
    pub fn current(&self) -> usize {
        self.inner.cap.load(Ordering::Acquire)
    }

    /// Maximum (pool size).
    pub fn max(&self) -> usize {
        self.inner.max
    }

    /// Sets the cap, clamped to `1..=max`, and wakes throttled workers.
    pub fn set_cap(&self, cap: usize) {
        let clamped = cap.clamp(1, self.inner.max);
        self.inner.cap.store(clamped, Ordering::Release);
        self.inner.generation.fetch_add(1, Ordering::Release);
        let _g = self.inner.lock.lock();
        self.inner.cv.notify_all();
    }

    /// Number of cap changes so far.
    pub fn generation(&self) -> usize {
        self.inner.generation.load(Ordering::Acquire)
    }

    /// True if worker `index` is allowed to run under the current cap.
    #[inline]
    pub fn allows(&self, index: usize) -> bool {
        index < self.current()
    }

    /// Blocks the calling worker until it is allowed to run or `should_exit`
    /// returns true. Returns false if it exited due to `should_exit`.
    pub(crate) fn wait_until_allowed(&self, index: usize, should_exit: impl Fn() -> bool) -> bool {
        loop {
            if should_exit() {
                return false;
            }
            if self.allows(index) {
                return true;
            }
            let mut g = self.inner.lock.lock();
            // Re-check under the lock to avoid missing a notify between the
            // check above and the wait below.
            if should_exit() || self.allows(index) {
                continue;
            }
            self.inner
                .cv
                .wait_for(&mut g, std::time::Duration::from_millis(50));
        }
    }

    /// Wakes all throttled workers (used at shutdown).
    pub(crate) fn wake_all(&self) {
        let _g = self.inner.lock.lock();
        self.inner.cv.notify_all();
    }
}

impl Knob for ThreadCap {
    fn spec(&self) -> KnobSpec {
        KnobSpec::new("thread_cap", 1, self.inner.max as i64)
            .with_unit("workers")
            .with_default(self.inner.max as i64)
    }
    fn get(&self) -> i64 {
        self.current() as i64
    }
    fn set(&self, value: i64) {
        self.set_cap(value.max(1) as usize);
    }
}

impl std::fmt::Debug for ThreadCap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadCap")
            .field("cap", &self.current())
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_fully_open() {
        let c = ThreadCap::new(8);
        assert_eq!(c.current(), 8);
        assert!(c.allows(0));
        assert!(c.allows(7));
    }

    #[test]
    fn set_clamps_to_bounds() {
        let c = ThreadCap::new(8);
        c.set_cap(0);
        assert_eq!(c.current(), 1, "cap must never reach zero");
        c.set_cap(100);
        assert_eq!(c.current(), 8);
    }

    #[test]
    fn allows_respects_cap() {
        let c = ThreadCap::new(4);
        c.set_cap(2);
        assert!(c.allows(0));
        assert!(c.allows(1));
        assert!(!c.allows(2));
        assert!(!c.allows(3));
    }

    #[test]
    fn knob_interface() {
        let c = ThreadCap::new(16);
        let spec = c.spec();
        assert_eq!(spec.name, "thread_cap");
        assert_eq!(spec.min, 1);
        assert_eq!(spec.max, 16);
        c.set(4);
        assert_eq!(c.get(), 4);
    }

    #[test]
    fn generation_tracks_changes() {
        let c = ThreadCap::new(4);
        assert_eq!(c.generation(), 0);
        c.set_cap(2);
        c.set_cap(3);
        assert_eq!(c.generation(), 2);
    }

    #[test]
    fn clones_share_state() {
        let a = ThreadCap::new(4);
        let b = a.clone();
        a.set_cap(1);
        assert_eq!(b.current(), 1);
    }

    #[test]
    fn throttled_worker_wakes_on_raise() {
        let c = ThreadCap::new(2);
        c.set_cap(1);
        let worker_cap = c.clone();
        let released = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let rel = released.clone();
        let t = std::thread::spawn(move || {
            // Worker index 1 is throttled while cap is 1.
            let ok = worker_cap.wait_until_allowed(1, || false);
            rel.store(ok, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!released.load(Ordering::SeqCst), "woke before cap raised");
        c.set_cap(2);
        t.join().unwrap();
        assert!(released.load(Ordering::SeqCst));
    }

    #[test]
    fn wait_exits_on_shutdown_signal() {
        let c = ThreadCap::new(2);
        c.set_cap(1);
        let worker_cap = c.clone();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let s = stop.clone();
        let t = std::thread::spawn(move || {
            worker_cap.wait_until_allowed(1, || s.load(Ordering::SeqCst))
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        stop.store(true, Ordering::SeqCst);
        c.wake_all();
        assert!(!t.join().unwrap(), "should report exit, not allowance");
    }
}
