//! # lg-runtime — instrumentable work-stealing task runtime
//!
//! A from-scratch task-parallel runtime in the HPX/TBB mold, built to be
//! *observed and adapted*: every scheduling decision emits `lg-core`
//! events, and the runtime exposes its control parameters as knobs.
//!
//! * [`pool::ThreadPool`] — N workers with Chase–Lev work-stealing deques
//!   (`crossbeam-deque`), a per-worker LIFO slot, and a global injector
//!   with batched pushes/steals; idle workers back off through
//!   spin → yield → park with an escalating timeout, and spawns touch the
//!   park condvar only when a worker is actually parked.
//! * [`throttle`] — the **thread cap**: workers whose index is ≥ the cap
//!   park at task boundaries and resume when the cap rises. This is the
//!   concurrency-throttling actuator the energy experiments drive.
//! * [`budget`] — the **thread budget**: unlike the cap, shrinking the
//!   budget releases worker OS threads (their deques are shelved and
//!   reused on re-spawn), so a machine-wide arbiter can actually move
//!   thread capacity between tenant pools.
//! * [`task`] — named tasks and [`task::JoinHandle`]s. Task bodies use
//!   inline small-closure storage ([`task::INLINE_BODY_BYTES`]), so the
//!   steady-state spawn/execute path performs **no heap allocation**.
//! * [`scope`] — structured fork-join: `pool.scope(|s| s.spawn(...))`
//!   guarantees all spawned tasks finish before `scope` returns.
//! * [`par_iter`] — `parallel_for` over index ranges with a tunable chunk
//!   size (the granularity knob), built on [`Scope::spawn_batch`]: one
//!   injector batch push and one wake wave per call, zero per-chunk
//!   boxing.
//! * [`fault`] — injectable task faults (seeded crash probability,
//!   straggler delay) for resilience testing; panics stay contained and
//!   join handles still resolve.
//!
//! ## Events emitted
//!
//! | Event | When |
//! |---|---|
//! | `WorkerStart`/`WorkerStop` | worker thread lifecycle |
//! | `TaskBegin`/`TaskEnd` | around every task body |
//! | counter `rt.spawned` / `rt.executed` / `rt.steals` / `rt.parks` | scheduling |
//! | counter `rt.inline_tasks` / `rt.boxed_tasks` | task-body representation (inline vs. heap) |
//! | counter `rt.batch_spawns` / `rt.lifo_hits` | batched submission / LIFO-slot fast path |
//! | counter `rt.injected_panics` / `rt.injected_stragglers` | fault injection |

#![warn(missing_docs)]

pub mod budget;
pub mod dag;
pub mod fault;
pub mod par_iter;
pub mod pool;
pub mod scope;
pub mod task;
pub mod throttle;

pub use budget::ThreadBudget;
pub use dag::{DagHint, DagNodeId, DagScope};
pub use fault::{FaultConfig, InjectedFault};
pub use par_iter::ParallelForStats;
pub use pool::{PoolConfig, ThreadPool};
pub use scope::Scope;
pub use task::{JoinHandle, INLINE_BODY_BYTES};
pub use throttle::ThreadCap;
