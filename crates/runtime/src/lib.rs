//! # lg-runtime — instrumentable work-stealing task runtime
//!
//! A from-scratch task-parallel runtime in the HPX/TBB mold, built to be
//! *observed and adapted*: every scheduling decision emits `lg-core`
//! events, and the runtime exposes its control parameters as knobs.
//!
//! * [`pool::ThreadPool`] — N workers with Chase–Lev work-stealing deques
//!   (`crossbeam-deque`) and a global injector; idle workers park on a
//!   condvar after a bounded spin/steal search.
//! * [`throttle`] — the **thread cap**: workers whose index is ≥ the cap
//!   park at task boundaries and resume when the cap rises. This is the
//!   concurrency-throttling actuator the energy experiments drive.
//! * [`task`] — named tasks and [`task::JoinHandle`]s.
//! * [`scope`] — structured fork-join: `pool.scope(|s| s.spawn(...))`
//!   guarantees all spawned tasks finish before `scope` returns.
//! * [`par_iter`] — `parallel_for` over index ranges with a tunable chunk
//!   size (the granularity knob).
//! * [`fault`] — injectable task faults (seeded crash probability,
//!   straggler delay) for resilience testing; panics stay contained and
//!   join handles still resolve.
//!
//! ## Events emitted
//!
//! | Event | When |
//! |---|---|
//! | `WorkerStart`/`WorkerStop` | worker thread lifecycle |
//! | `TaskBegin`/`TaskEnd` | around every task body |
//! | counter `rt.spawned` / `rt.executed` / `rt.steals` / `rt.parks` | scheduling |
//! | counter `rt.injected_panics` / `rt.injected_stragglers` | fault injection |

#![warn(missing_docs)]

pub mod fault;
pub mod par_iter;
pub mod pool;
pub mod scope;
pub mod task;
pub mod throttle;

pub use fault::{FaultConfig, InjectedFault};
pub use par_iter::ParallelForStats;
pub use pool::{PoolConfig, ThreadPool};
pub use scope::Scope;
pub use task::JoinHandle;
pub use throttle::ThreadCap;
