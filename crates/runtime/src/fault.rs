//! Injectable task faults for resilience testing.
//!
//! A [`FaultConfig`] attached to a [`crate::PoolConfig`] makes the pool
//! adversarial: each submitted task may, with seeded probability, have its
//! body replaced by a panic (crash fault) or delayed by a fixed sleep
//! (straggler fault). The RNG stream is deterministic per seed; which
//! *specific* task draws a fault still depends on submission order, so
//! treat the injection as statistically — not positionally — reproducible
//! under concurrency.
//!
//! Injected panics flow through the pool's normal containment: the worker
//! survives, the pool panic counter increments, and a
//! [`crate::JoinHandle`] for the task reports an error.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Configuration of injected task faults. A default config injects
/// nothing.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// RNG seed for fault decisions.
    pub seed: u64,
    /// Probability a task's body is replaced by a panic.
    pub panic_prob: f64,
    /// Probability a task is delayed by `straggler_delay` before running.
    pub straggler_prob: f64,
    /// Delay injected into straggler tasks.
    pub straggler_delay: Duration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            panic_prob: 0.0,
            straggler_prob: 0.0,
            straggler_delay: Duration::from_millis(1),
        }
    }
}

impl FaultConfig {
    /// A config with the given seed and no faults enabled.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Default::default()
        }
    }

    /// Sets the panic probability.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn panic_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "panic probability must be in [0, 1]"
        );
        self.panic_prob = p;
        self
    }

    /// Sets the straggler probability and delay.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn straggler(mut self, p: f64, delay: Duration) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "straggler probability must be in [0, 1]"
        );
        self.straggler_prob = p;
        self.straggler_delay = delay;
        self
    }

    /// True if any fault can actually fire.
    pub fn is_active(&self) -> bool {
        self.panic_prob > 0.0 || self.straggler_prob > 0.0
    }
}

/// The fault drawn for one task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TaskFault {
    Panic,
    Straggle(Duration),
}

/// Marker payload for injected panics (distinguishable from user panics
/// in a downcast, and avoids a formatted message on the hot path).
pub struct InjectedFault;

/// Shared per-pool fault state: the seeded RNG plus injection counters.
pub(crate) struct FaultState {
    config: FaultConfig,
    rng: parking_lot::Mutex<StdRng>,
    panics: AtomicUsize,
    stragglers: AtomicUsize,
}

impl FaultState {
    pub(crate) fn new(config: FaultConfig) -> Self {
        let rng = parking_lot::Mutex::new(StdRng::seed_from_u64(config.seed));
        Self {
            config,
            rng,
            panics: AtomicUsize::new(0),
            stragglers: AtomicUsize::new(0),
        }
    }

    /// Draws the fault (if any) for the next task. Panic is sampled
    /// first, so under `panic_prob = 1.0` every task crashes.
    pub(crate) fn decide(&self) -> Option<TaskFault> {
        let mut rng = self.rng.lock();
        if self.config.panic_prob > 0.0 && rng.gen_bool(self.config.panic_prob) {
            drop(rng);
            self.panics.fetch_add(1, Ordering::Relaxed);
            return Some(TaskFault::Panic);
        }
        if self.config.straggler_prob > 0.0 && rng.gen_bool(self.config.straggler_prob) {
            drop(rng);
            self.stragglers.fetch_add(1, Ordering::Relaxed);
            return Some(TaskFault::Straggle(self.config.straggler_delay));
        }
        None
    }

    pub(crate) fn injected_panics(&self) -> usize {
        self.panics.load(Ordering::Relaxed)
    }

    pub(crate) fn injected_stragglers(&self) -> usize {
        self.stragglers.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_by_default() {
        let c = FaultConfig::default();
        assert!(!c.is_active());
        let s = FaultState::new(c);
        assert!((0..1000).all(|_| s.decide().is_none()));
    }

    #[test]
    fn panic_rate_tracks_probability() {
        let s = FaultState::new(FaultConfig::seeded(1).panic_prob(0.3));
        let n = 10_000;
        let hits = (0..n)
            .filter(|_| s.decide() == Some(TaskFault::Panic))
            .count();
        assert!(
            (2_500..3_500).contains(&hits),
            "0.3 panic prob gave {hits}/{n}"
        );
        assert_eq!(s.injected_panics(), hits);
    }

    #[test]
    fn straggler_carries_delay() {
        let d = Duration::from_millis(7);
        let s = FaultState::new(FaultConfig::seeded(2).straggler(1.0, d));
        assert_eq!(s.decide(), Some(TaskFault::Straggle(d)));
        assert_eq!(s.injected_stragglers(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let s = FaultState::new(
                FaultConfig::seeded(seed)
                    .panic_prob(0.2)
                    .straggler(0.2, Duration::from_millis(1)),
            );
            (0..500).map(|_| s.decide()).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
