//! Property-based tests for the simulated machine.

use lg_metrics::PowerModel;
use lg_sim::machine::alloc_rates;
use lg_sim::{MachineSpec, SimRuntime, SimTask};
use proptest::prelude::*;

fn spec(cores: usize, bw: f64, stall: f64) -> MachineSpec {
    MachineSpec {
        cores,
        core_flops: 1e9,
        mem_bw: bw,
        power: PowerModel::new(10.0, 2.0),
        sched_overhead_ns: 0,
        stall_intensity: stall,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn alloc_rates_max_min_fairness(
        bpos in proptest::collection::vec(0.01f64..32.0, 2..16),
        bw in 1e8f64..1e11,
    ) {
        let s = spec(32, bw, 0.5);
        let rates = alloc_rates(&s, &bpos);
        // Max-min property: if task i got less than its demand, no task j
        // got a strictly larger allocation than i unless j also demanded
        // more than it could use... simplified check: all *constrained*
        // tasks receive equal bandwidth.
        let demands: Vec<f64> = bpos.iter().map(|b| b * s.core_flops).collect();
        let allocs: Vec<f64> = rates.iter().zip(&bpos).map(|(r, b)| r * b).collect();
        let constrained: Vec<f64> = allocs
            .iter()
            .zip(&demands)
            .filter(|(a, d)| **a < **d - 1.0)
            .map(|(a, _)| *a)
            .collect();
        if constrained.len() >= 2 {
            let first = constrained[0];
            for &a in &constrained[1..] {
                prop_assert!((a - first).abs() <= first * 1e-9 + 1e-6,
                    "constrained tasks got unequal shares: {a} vs {first}");
            }
        }
    }

    #[test]
    fn total_work_time_lower_bounds_hold(
        ntasks in 1usize..32,
        ops_m in 1u64..50,
        cap in 1usize..16,
    ) {
        // Completion time ≥ total_ops / (cap × flops) and ≥ ops_per_task/flops.
        let s = spec(16, 1e15, 0.5);
        let mut sim = SimRuntime::new(s);
        sim.set_cap(cap);
        let ops = ops_m as f64 * 1e6;
        sim.submit_all((0..ntasks).map(|_| SimTask::new("t", ops, 0.0)));
        let r = sim.run_until_idle();
        let min_parallel = ops * ntasks as f64 / (cap.min(16) as f64 * 1e9);
        let min_critical = ops / 1e9;
        let t = r.elapsed_s();
        prop_assert!(t >= min_parallel * 0.999, "{t} < parallel bound {min_parallel}");
        prop_assert!(t >= min_critical * 0.999, "{t} < critical path {min_critical}");
    }

    #[test]
    fn bandwidth_bound_on_makespan(
        ntasks in 1usize..24,
        bytes_m in 1u64..40,
    ) {
        // Total bytes / bandwidth is a hard floor on completion time.
        let s = spec(8, 2e9, 0.5);
        let mut sim = SimRuntime::new(s);
        let bytes = bytes_m as f64 * 1e6;
        sim.submit_all((0..ntasks).map(|_| SimTask::new("m", 1e6, bytes)));
        let r = sim.run_until_idle();
        let floor = bytes * ntasks as f64 / 2e9;
        prop_assert!(r.elapsed_s() >= floor * 0.999, "{} < bw floor {}", r.elapsed_s(), floor);
    }

    #[test]
    fn cap_monotonicity_for_compute(
        ntasks in 2usize..24,
        cap_lo in 1usize..4,
        extra in 1usize..4,
    ) {
        // More cores never slow compute-bound work down.
        let run = |cap: usize| {
            let mut sim = SimRuntime::new(spec(8, 1e15, 0.5));
            sim.set_cap(cap);
            sim.submit_all((0..ntasks).map(|_| SimTask::new("c", 1e6, 0.0)));
            sim.run_until_idle().elapsed_ns
        };
        let t_lo = run(cap_lo);
        let t_hi = run(cap_lo + extra);
        prop_assert!(t_hi <= t_lo + 1, "{t_hi} > {t_lo}");
    }

    #[test]
    fn stall_floor_orders_energy(
        ntasks in 2usize..16,
    ) {
        // Same memory-bound schedule: higher stall floor ⇒ ≥ energy.
        let run = |stall: f64| {
            let mut sim = SimRuntime::new(spec(8, 1e9, stall));
            sim.submit_all((0..ntasks).map(|_| SimTask::new("m", 1e6, 4e6)));
            sim.run_until_idle().energy_j
        };
        let e0 = run(0.0);
        let e5 = run(0.5);
        let e1 = run(1.0);
        prop_assert!(e0 <= e5 + 1e-9);
        prop_assert!(e5 <= e1 + 1e-9);
    }

    #[test]
    fn profiles_and_report_agree(
        ntasks in 1usize..40,
        cap in 1usize..8,
    ) {
        let mut sim = SimRuntime::new(spec(8, 1e10, 0.5));
        sim.set_cap(cap);
        sim.submit_all((0..ntasks).map(|_| SimTask::new("agree", 1e6, 1e5)));
        let r = sim.run_until_idle();
        prop_assert_eq!(r.tasks, ntasks as u64);
        let prof = sim.lg().profiles().get("agree").unwrap();
        prop_assert_eq!(prof.count, ntasks as u64);
        prop_assert_eq!(prof.active, 0);
        // No task can finish faster than its pure-compute time.
        prop_assert!(prof.min_ns >= 1e6 / 1e9 * 1e9 * 0.999, "min {}", prof.min_ns);
    }
}
