//! # lg-sim — deterministic discrete-event simulated machine
//!
//! The evaluation substrate standing in for a many-core testbed (see
//! DESIGN.md §2). A [`machine::MachineSpec`] describes cores, per-core
//! compute rate, shared memory bandwidth, and the power model; the
//! simulated runtime ([`sim_rt::SimRuntime`]) executes batches of
//! [`sim_rt::SimTask`]s — descriptors carrying op counts and bytes
//! touched — over virtual time, with:
//!
//! * **Roofline contention**: each active task's progress rate is
//!   `min(core_flops, ai · bw_share)` where `bw_share` divides the shared
//!   memory bandwidth among concurrently *memory-hungry* tasks. Throughput
//!   therefore scales linearly with cores for compute-bound work and
//!   saturates at the bandwidth knee for memory-bound work — the shape that
//!   makes concurrency throttling profitable.
//! * **Power accounting**: package power follows
//!   `lg_metrics::PowerModel` with per-core intensity = achieved/peak
//!   rate; energy integrates over virtual time.
//! * **The same adaptation surface** as the real runtime: a `thread cap`
//!   knob, `lg-core` events with virtual timestamps, and profiles.
//!
//! Determinism: simulation state advances only through the event queue;
//! ties break on sequence numbers; no wall-clock reads, no OS threads.

#![warn(missing_docs)]

pub mod des;
pub mod machine;
pub mod share;
pub mod sim_rt;
pub mod workload_model;

pub use des::{EventQueue, SimEvent};
pub use machine::MachineSpec;
pub use share::MachineShares;
pub use sim_rt::{SimRunReport, SimRuntime, SimTask};
pub use workload_model::{SimWorkload, WorkloadKind};
