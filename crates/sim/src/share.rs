//! Machine-share model: carving one machine into per-tenant slices.
//!
//! An arbiter that moves thread capacity between tenants needs the
//! simulated machine to follow: a tenant granted `k` of the machine's
//! `N` cores should also get `k/N` of the shared memory bandwidth and
//! carry `k/N` of the package idle power, so that per-tenant energy and
//! roofline behaviour stay physical under repartitioning. A
//! [`MachineShares`] does exactly that bookkeeping: [`MachineShares::sub_spec`]
//! produces the [`MachineSpec`] of a `k`-core slice, and
//! [`MachineShares::split`] carves a full partition at once.
//!
//! Conservation properties (tested below): summing the slices of any
//! partition recovers the whole machine's cores, bandwidth, and idle
//! power to within rounding, and per-core dynamic power is unchanged —
//! a slice is a smaller machine, not a different one.

use crate::machine::MachineSpec;
use lg_metrics::PowerModel;

/// Carves per-tenant [`MachineSpec`] slices out of one host machine.
#[derive(Clone, Copy, Debug)]
pub struct MachineShares {
    host: MachineSpec,
}

impl MachineShares {
    /// Wraps a host machine for slicing.
    ///
    /// # Panics
    /// Panics if the spec fails [`MachineSpec::validate`].
    pub fn new(host: MachineSpec) -> Self {
        host.validate();
        Self { host }
    }

    /// The whole machine.
    pub fn host(&self) -> &MachineSpec {
        &self.host
    }

    /// The spec of a slice holding `threads` of the host's cores:
    /// bandwidth and idle power scale with the core fraction; per-core
    /// compute rate, dynamic power, scheduling overhead, and the stall
    /// floor are per-core properties and carry over unchanged.
    ///
    /// # Panics
    /// Panics if `threads` is zero or exceeds the host's core count.
    pub fn sub_spec(&self, threads: usize) -> MachineSpec {
        assert!(threads > 0, "a machine share needs at least one core");
        assert!(
            threads <= self.host.cores,
            "share of {threads} cores exceeds host's {}",
            self.host.cores
        );
        let frac = threads as f64 / self.host.cores as f64;
        MachineSpec {
            cores: threads,
            core_flops: self.host.core_flops,
            mem_bw: self.host.mem_bw * frac,
            power: PowerModel::new(self.host.power.p_idle * frac, self.host.power.p_core),
            sched_overhead_ns: self.host.sched_overhead_ns,
            stall_intensity: self.host.stall_intensity,
        }
    }

    /// Carves one slice per entry of `threads`.
    ///
    /// # Panics
    /// Panics if any entry is zero or the entries sum past the host's
    /// core count (a partition must not oversubscribe the machine).
    pub fn split(&self, threads: &[usize]) -> Vec<MachineSpec> {
        let total: usize = threads.iter().sum();
        assert!(
            total <= self.host.cores,
            "partition of {total} cores oversubscribes host's {}",
            self.host.cores
        );
        threads.iter().map(|&t| self.sub_spec(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_spec_scales_bandwidth_and_idle_power() {
        let shares = MachineShares::new(MachineSpec::server32());
        let half = shares.sub_spec(16);
        assert_eq!(half.cores, 16);
        assert!((half.mem_bw - 12e9).abs() < 1.0);
        let host = shares.host();
        assert!((half.power.p_idle - host.power.p_idle / 2.0).abs() < 1e-9);
        assert_eq!(half.power.p_core, host.power.p_core);
        assert_eq!(half.core_flops, host.core_flops);
        half.validate();
    }

    #[test]
    fn split_conserves_cores_bandwidth_and_idle_power() {
        let shares = MachineShares::new(MachineSpec::server32());
        let host = *shares.host();
        for partition in [vec![8, 24], vec![16, 16], vec![1, 1, 30], vec![32]] {
            let slices = shares.split(&partition);
            let cores: usize = slices.iter().map(|s| s.cores).sum();
            let bw: f64 = slices.iter().map(|s| s.mem_bw).sum();
            let idle: f64 = slices.iter().map(|s| s.power.p_idle).sum();
            assert_eq!(cores, 32);
            assert!((bw - host.mem_bw).abs() < 1e-3, "partition {partition:?}");
            assert!((idle - host.power.p_idle).abs() < 1e-9);
        }
    }

    #[test]
    fn sub_partitions_allowed() {
        // A partition may leave cores idle (quarantined tenant at floor).
        let shares = MachineShares::new(MachineSpec::server32());
        let slices = shares.split(&[4, 8]);
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].cores + slices[1].cores, 12);
    }

    #[test]
    #[should_panic(expected = "oversubscribes")]
    fn oversubscription_rejected() {
        let shares = MachineShares::new(MachineSpec::server32());
        shares.split(&[20, 20]);
    }

    #[test]
    fn bandwidth_knee_moves_with_the_slice() {
        // A 4-bytes/op workload's knee sits at 6 cores on the full server;
        // a half-machine slice halves the knee too — the slice behaves
        // like a proportionally smaller machine.
        let shares = MachineShares::new(MachineSpec::server32());
        let full_knee = shares.host().bandwidth_knee(4.0);
        let half_knee = shares.sub_spec(16).bandwidth_knee(4.0);
        assert!((half_knee - full_knee / 2.0).abs() < 1e-9);
    }
}
