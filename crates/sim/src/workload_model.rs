//! Workload descriptors for the simulated machine.
//!
//! A [`SimWorkload`] generates batches of [`SimTask`]s — one batch per
//! "timestep" — parameterised by the same knobs the real workloads expose
//! (problem size, chunk count). The kinds mirror the evaluation's needs:
//!
//! * [`WorkloadKind::MemoryBound`] — stencil-shaped: high bytes/op, so
//!   throughput saturates at the machine's bandwidth knee.
//! * [`WorkloadKind::ComputeBound`] — transcendental-kernel-shaped:
//!   negligible traffic, scales to the core count.
//! * [`WorkloadKind::Mixed`] — fixed blend of the two.
//!
//! [`PhasedSimWorkload`] alternates kinds on a fixed period, driving the
//! phase-aware adaptation experiment (Fig 6).

use crate::sim_rt::SimTask;

/// The character of a workload's tasks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorkloadKind {
    /// High memory traffic per op (`bytes_per_op` ≈ 4–16).
    MemoryBound,
    /// Negligible memory traffic.
    ComputeBound,
    /// A `fraction` of tasks memory-bound, the rest compute-bound.
    Mixed {
        /// Fraction of memory-bound tasks, in `[0, 1]`.
        memory_fraction: f64,
    },
}

/// A steady workload generating identical batches.
#[derive(Clone, Debug)]
pub struct SimWorkload {
    /// Task name used for profiling.
    pub name: String,
    /// Kind (traffic character).
    pub kind: WorkloadKind,
    /// Total ops per timestep (split across tasks).
    pub ops_per_step: f64,
    /// Tasks per timestep (the decomposition width).
    pub tasks_per_step: usize,
    /// Bytes per op for the memory-bound tasks.
    pub bytes_per_op: f64,
}

impl SimWorkload {
    /// A stencil-like memory-bound workload.
    pub fn stencil(ops_per_step: f64, tasks_per_step: usize) -> Self {
        Self {
            name: "stencil".into(),
            kind: WorkloadKind::MemoryBound,
            ops_per_step,
            tasks_per_step,
            bytes_per_op: 8.0,
        }
    }

    /// A compute-bound kernel workload.
    pub fn compute(ops_per_step: f64, tasks_per_step: usize) -> Self {
        Self {
            name: "compute".into(),
            kind: WorkloadKind::ComputeBound,
            ops_per_step,
            tasks_per_step,
            bytes_per_op: 0.0,
        }
    }

    /// A mixed workload.
    pub fn mixed(ops_per_step: f64, tasks_per_step: usize, memory_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&memory_fraction), "fraction in [0,1]");
        Self {
            name: "mixed".into(),
            kind: WorkloadKind::Mixed { memory_fraction },
            ops_per_step,
            tasks_per_step,
            bytes_per_op: 8.0,
        }
    }

    /// Generates one timestep's batch of tasks.
    ///
    /// # Panics
    /// Panics if `tasks_per_step` is zero.
    pub fn step_batch(&self) -> Vec<SimTask> {
        assert!(
            self.tasks_per_step > 0,
            "workload needs at least one task per step"
        );
        let ops_each = self.ops_per_step / self.tasks_per_step as f64;
        (0..self.tasks_per_step)
            .map(|i| {
                let bytes = match self.kind {
                    WorkloadKind::MemoryBound => ops_each * self.bytes_per_op,
                    WorkloadKind::ComputeBound => 0.0,
                    WorkloadKind::Mixed { memory_fraction } => {
                        // Deterministic striping: first `fraction` of slots
                        // are memory-bound.
                        let cutoff =
                            (self.tasks_per_step as f64 * memory_fraction).round() as usize;
                        if i < cutoff {
                            ops_each * self.bytes_per_op
                        } else {
                            0.0
                        }
                    }
                };
                SimTask::new(self.name.clone(), ops_each, bytes)
            })
            .collect()
    }
}

/// A workload whose kind alternates every `period_steps` timesteps.
#[derive(Clone, Debug)]
pub struct PhasedSimWorkload {
    /// Phase A (even phases).
    pub a: SimWorkload,
    /// Phase B (odd phases).
    pub b: SimWorkload,
    /// Steps per phase.
    pub period_steps: usize,
}

impl PhasedSimWorkload {
    /// Creates an alternator.
    ///
    /// # Panics
    /// Panics if `period_steps` is zero.
    pub fn new(a: SimWorkload, b: SimWorkload, period_steps: usize) -> Self {
        assert!(period_steps > 0, "phase period must be positive");
        Self { a, b, period_steps }
    }

    /// The workload active at global step index `step`.
    pub fn active_at(&self, step: usize) -> &SimWorkload {
        if (step / self.period_steps).is_multiple_of(2) {
            &self.a
        } else {
            &self.b
        }
    }

    /// The phase index (0-based) at `step`.
    pub fn phase_index(&self, step: usize) -> usize {
        step / self.period_steps
    }

    /// Batch for global step `step`.
    pub fn step_batch(&self, step: usize) -> Vec<SimTask> {
        self.active_at(step).step_batch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_batch_shape() {
        let w = SimWorkload::stencil(1e9, 32);
        let batch = w.step_batch();
        assert_eq!(batch.len(), 32);
        let total_ops: f64 = batch.iter().map(|t| t.ops).sum();
        assert!((total_ops - 1e9).abs() < 1.0);
        for t in &batch {
            assert!((t.bytes_per_op() - 8.0).abs() < 1e-9);
        }
    }

    #[test]
    fn compute_batch_has_no_traffic() {
        let w = SimWorkload::compute(1e8, 8);
        assert!(w.step_batch().iter().all(|t| t.bytes == 0.0));
    }

    #[test]
    fn mixed_fraction_striping() {
        let w = SimWorkload::mixed(1e8, 10, 0.3);
        let batch = w.step_batch();
        let memory = batch.iter().filter(|t| t.bytes > 0.0).count();
        assert_eq!(memory, 3);
    }

    #[test]
    fn mixed_extremes() {
        assert!(SimWorkload::mixed(1e8, 10, 0.0)
            .step_batch()
            .iter()
            .all(|t| t.bytes == 0.0));
        assert!(SimWorkload::mixed(1e8, 10, 1.0)
            .step_batch()
            .iter()
            .all(|t| t.bytes > 0.0));
    }

    #[test]
    fn phased_alternation() {
        let p = PhasedSimWorkload::new(
            SimWorkload::stencil(1e8, 4),
            SimWorkload::compute(1e8, 4),
            5,
        );
        assert_eq!(p.active_at(0).name, "stencil");
        assert_eq!(p.active_at(4).name, "stencil");
        assert_eq!(p.active_at(5).name, "compute");
        assert_eq!(p.active_at(9).name, "compute");
        assert_eq!(p.active_at(10).name, "stencil");
        assert_eq!(p.phase_index(0), 0);
        assert_eq!(p.phase_index(5), 1);
        assert_eq!(p.phase_index(12), 2);
    }

    #[test]
    fn batches_feed_the_runtime() {
        use crate::machine::MachineSpec;
        use crate::sim_rt::SimRuntime;
        let mut sim = SimRuntime::new(MachineSpec::small8());
        let w = SimWorkload::compute(8e6, 8);
        for _ in 0..3 {
            sim.submit_all(w.step_batch());
            let r = sim.run_until_idle();
            assert_eq!(r.tasks, 8);
        }
        assert_eq!(sim.total_tasks(), 24);
    }
}
