//! The simulated runtime: fluid task execution over virtual time.
//!
//! Tasks are descriptors (`ops` to execute, `bytes` to move). Up to
//! `min(thread_cap, cores)` tasks run concurrently; their instantaneous op
//! rates come from [`crate::machine::alloc_rates`] (max-min fair bandwidth
//! sharing), and the engine advances virtual time from rate-change boundary
//! to boundary (piecewise-constant fluid model — every completion time and
//! energy integral is exact, and runs are bit-reproducible).
//!
//! Scheduling overhead is modelled as a pure-compute prologue of
//! `sched_overhead_ns` charged to the core when a task starts — this is
//! what makes over-decomposition (tiny chunks) genuinely expensive in the
//! granularity experiments.
//!
//! The runtime emits the same `lg-core` events as the real pool
//! (`TaskBegin`/`TaskEnd` with virtual timestamps), exposes the same
//! `thread_cap` knob, and integrates package power into an
//! [`lg_metrics::EnergyMeter`] — so adaptation code cannot tell the two
//! substrates apart.

use crate::machine::{alloc_rates, MachineSpec};
use lg_core::knob::{AtomicKnob, KnobScale, KnobSpec};
use lg_core::{Clock, Event, Knob, LookingGlass, TaskId, VirtualClock};
use lg_metrics::EnergyMeter;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A simulated task descriptor.
#[derive(Clone, Debug, PartialEq)]
pub struct SimTask {
    /// Task type name (profiled under this name).
    pub name: String,
    /// Operations to execute.
    pub ops: f64,
    /// Bytes of memory traffic the task generates.
    pub bytes: f64,
    /// Caller-chosen correlation tag, reported back through
    /// [`SimRuntime::take_completions`]. External schedulers (e.g. the DAG
    /// driver) use it to map a completion back to their own node identity.
    /// Zero by default.
    pub tag: u64,
}

impl SimTask {
    /// Creates a task descriptor.
    ///
    /// # Panics
    /// Panics if `ops` is not strictly positive or `bytes` is negative.
    pub fn new(name: impl Into<String>, ops: f64, bytes: f64) -> Self {
        assert!(ops > 0.0, "task must have positive ops");
        assert!(bytes >= 0.0, "bytes must be non-negative");
        Self {
            name: name.into(),
            ops,
            bytes,
            tag: 0,
        }
    }

    /// Sets the correlation tag (builder style).
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Bytes per op (traffic intensity).
    pub fn bytes_per_op(&self) -> f64 {
        self.bytes / self.ops
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Scheduling prologue (pure compute).
    Overhead,
    /// Task body.
    Body,
}

struct Running {
    id: TaskId,
    worker: usize,
    phase: Phase,
    remaining_ops: f64,
    body_ops: f64,
    bpo: f64,
    started_ns: u64,
    tag: u64,
}

/// Summary of one [`SimRuntime::run_until_idle`] call.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimRunReport {
    /// Virtual time elapsed during the run (ns).
    pub elapsed_ns: u64,
    /// Energy consumed during the run (J).
    pub energy_j: f64,
    /// Tasks completed during the run.
    pub tasks: u64,
    /// Body operations completed during the run.
    pub ops: f64,
}

impl SimRunReport {
    /// Elapsed seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_ns as f64 * 1e-9
    }

    /// Achieved throughput in ops/second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.ops / self.elapsed_s()
        }
    }

    /// Mean power over the run (W).
    pub fn mean_power_w(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.energy_j / self.elapsed_s()
        }
    }

    /// Energy-delay product (J·s).
    pub fn edp(&self) -> f64 {
        self.energy_j * self.elapsed_s()
    }
}

/// The simulated work-stealing runtime (see module docs).
pub struct SimRuntime {
    spec: MachineSpec,
    lg: Arc<LookingGlass>,
    clock: VirtualClock,
    queue: VecDeque<(TaskId, SimTask)>,
    running: Vec<Running>,
    cap: Arc<AtomicKnob>,
    /// DVFS knob in per-mille of nominal frequency (200‰..=1000‰).
    /// Core rate scales linearly with frequency; per-core dynamic power
    /// scales as f³ (the f·V² model with V ∝ f), so slowing cores on
    /// bandwidth-bound work trades nothing for a cubic power saving.
    freq: Arc<AtomicKnob>,
    meter: EnergyMeter,
    /// f64-bits mirrors of the meter, read by the `sim.energy_j` /
    /// `sim.power_w` introspection gauges.
    energy_gauge: Arc<AtomicU64>,
    power_gauge: Arc<AtomicU64>,
    tasks_done: u64,
    ops_done: f64,
    /// Ops advanced on *any* running task, completed or not — the
    /// continuous progress signal (`ops_done` is quantized to whole-task
    /// completions, useless inside a round shorter than a task).
    ops_progressed: f64,
    /// `(tag, completion time)` of every finished task since the last
    /// [`SimRuntime::take_completions`], in completion order.
    completions: Vec<(u64, u64)>,
}

impl SimRuntime {
    /// Creates a runtime over `spec`, wiring a fresh `LookingGlass`
    /// instance on a virtual clock.
    pub fn new(spec: MachineSpec) -> Self {
        spec.validate();
        let clock = VirtualClock::new();
        let lg = LookingGlass::builder()
            .clock(Arc::new(clock.clone()))
            .build();
        Self::with_instance(spec, lg, clock)
    }

    /// Creates a runtime reporting to an existing instance (whose clock
    /// must be `clock`).
    pub fn with_instance(spec: MachineSpec, lg: Arc<LookingGlass>, clock: VirtualClock) -> Self {
        spec.validate();
        // Pow2 scale: wave quantization (`tasks % cap`) riddles the full
        // integer cap range with spurious local minima, so derived tuning
        // spaces search the power-of-two lattice.
        let cap = AtomicKnob::new(
            KnobSpec::new("thread_cap", 1, spec.cores as i64)
                .with_unit("workers")
                .with_default(spec.cores as i64)
                .with_scale(KnobScale::Pow2),
            spec.cores as i64,
        );
        lg.knobs().register(cap.clone());
        let freq = AtomicKnob::new(
            KnobSpec::new("freq_permille", 200, 1000)
                .with_unit("permille")
                .with_step(50)
                .with_default(1000),
            1000,
        );
        lg.knobs().register(freq.clone());
        let mut meter = EnergyMeter::new();
        let idle_w = spec.power.power(0, 0.0);
        meter.sample(clock.now_ns(), idle_w);
        let energy_gauge = Arc::new(AtomicU64::new(0f64.to_bits()));
        let power_gauge = Arc::new(AtomicU64::new(idle_w.to_bits()));
        let (eg, pg) = (energy_gauge.clone(), power_gauge.clone());
        lg.introspection().register_gauge("sim.energy_j", move || {
            f64::from_bits(eg.load(Ordering::Relaxed))
        });
        lg.introspection().register_gauge("sim.power_w", move || {
            f64::from_bits(pg.load(Ordering::Relaxed))
        });
        Self {
            spec,
            lg,
            clock,
            queue: VecDeque::new(),
            running: Vec::new(),
            cap,
            freq,
            meter,
            energy_gauge,
            power_gauge,
            tasks_done: 0,
            ops_done: 0.0,
            ops_progressed: 0.0,
            completions: Vec::new(),
        }
    }

    /// The observation instance.
    pub fn lg(&self) -> &Arc<LookingGlass> {
        &self.lg
    }

    /// The virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The machine description.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// The thread-cap knob (also registered as `"thread_cap"`).
    pub fn cap_knob(&self) -> &Arc<AtomicKnob> {
        &self.cap
    }

    /// The DVFS knob (also registered as `"freq_permille"`).
    pub fn freq_knob(&self) -> &Arc<AtomicKnob> {
        &self.freq
    }

    /// Convenience: sets the thread cap.
    pub fn set_cap(&self, cap: usize) {
        self.cap.set(cap as i64);
    }

    /// Convenience: sets the frequency as a fraction of nominal (clamped
    /// to the knob's 0.2..=1.0 range).
    pub fn set_freq(&self, fraction: f64) {
        self.freq.set((fraction * 1000.0).round() as i64);
    }

    /// Current frequency fraction.
    pub fn freq_fraction(&self) -> f64 {
        self.freq.get() as f64 / 1000.0
    }

    /// The machine spec with the current DVFS setting applied: core rate
    /// scales with f, bandwidth does not.
    fn effective_spec(&self) -> MachineSpec {
        let mut s = self.spec;
        s.core_flops *= self.freq_fraction();
        s
    }

    /// Queues a task.
    pub fn submit(&mut self, task: SimTask) {
        let id = self.lg.intern(&task.name);
        self.queue.push_back((id, task));
    }

    /// Queues a batch.
    pub fn submit_all(&mut self, tasks: impl IntoIterator<Item = SimTask>) {
        for t in tasks {
            self.submit(t);
        }
    }

    /// Total energy integrated since construction (J).
    pub fn total_energy_j(&self) -> f64 {
        self.meter.energy_j()
    }

    /// Total ops advanced since construction, counting partial progress
    /// on in-flight tasks — continuous where task completions are
    /// quantized, so suitable for per-round throughput/efficiency
    /// signals.
    pub fn total_ops_progressed(&self) -> f64 {
        self.ops_progressed
    }

    /// Total tasks completed since construction.
    pub fn total_tasks(&self) -> u64 {
        self.tasks_done
    }

    fn effective_cap(&self) -> usize {
        (self.cap.get().max(1) as usize).min(self.spec.cores)
    }

    fn fill_slots(&mut self) {
        let cap = self.effective_cap();
        while self.running.len() < cap {
            let Some((id, task)) = self.queue.pop_front() else {
                break;
            };
            let now = self.clock.now_ns();
            // Pick the lowest free worker index for stable attribution.
            let used: Vec<usize> = self.running.iter().map(|r| r.worker).collect();
            let worker = (0..self.spec.cores)
                .find(|w| !used.contains(w))
                .unwrap_or(0);
            self.lg.emit(&Event::TaskBegin {
                task: id,
                worker,
                t_ns: now,
            });
            let overhead_ops = self.spec.sched_overhead_ns as f64 * 1e-9 * self.spec.core_flops;
            let (phase, remaining) = if overhead_ops > 0.0 {
                (Phase::Overhead, overhead_ops)
            } else {
                (Phase::Body, task.ops)
            };
            self.running.push(Running {
                id,
                worker,
                phase,
                remaining_ops: remaining,
                body_ops: task.ops,
                bpo: task.bytes_per_op(),
                started_ns: now,
                tag: task.tag,
            });
        }
    }

    fn current_rates(&self) -> Vec<f64> {
        let bpos: Vec<f64> = self
            .running
            .iter()
            .map(|r| match r.phase {
                Phase::Overhead => 0.0,
                Phase::Body => r.bpo,
            })
            .collect();
        alloc_rates(&self.effective_spec(), &bpos)
    }

    fn sample_power(&mut self, rates: &[f64]) {
        let active = self.running.len();
        let espec = self.effective_spec();
        let f = self.freq_fraction();
        // Dynamic power scales as f³ (f·V², V ∝ f); the stall floor and
        // utilisation are relative to the *current* frequency's peak.
        let intensity = if active == 0 {
            0.0
        } else {
            f.powi(3)
                * rates
                    .iter()
                    .map(|&r| espec.effective_intensity(r))
                    .sum::<f64>()
                / active as f64
        };
        let watts = self.spec.power.power(active, intensity);
        self.meter.sample(self.clock.now_ns(), watts);
        self.energy_gauge
            .store(self.meter.energy_j().to_bits(), Ordering::Relaxed);
        self.power_gauge.store(watts.to_bits(), Ordering::Relaxed);
    }

    /// One DES step over the running set: sample power, advance by the
    /// earliest phase completion (capped at `max_dt_ns`), progress every
    /// running task, collect completions. Returns false when nothing is
    /// running.
    fn step_running(&mut self, max_dt_ns: u64) -> bool {
        if self.running.is_empty() {
            return false;
        }
        let rates = self.current_rates();
        self.sample_power(&rates);
        // Time until the first phase completion.
        let mut dt_s = f64::INFINITY;
        for (r, &rate) in self.running.iter().zip(&rates) {
            if rate > 0.0 {
                dt_s = dt_s.min(r.remaining_ops / rate);
            }
        }
        assert!(dt_s.is_finite(), "no task can make progress");
        let dt_ns = ((dt_s * 1e9).ceil().max(1.0) as u64).min(max_dt_ns.max(1));
        self.clock.advance_by(dt_ns);
        let now = self.clock.now_ns();
        let actual_dt_s = dt_ns as f64 * 1e-9;
        // Progress every running task; collect completions.
        let mut still_running = Vec::with_capacity(self.running.len());
        for (mut r, rate) in self.running.drain(..).zip(rates.iter()) {
            self.ops_progressed += (rate * actual_dt_s).min(r.remaining_ops.max(0.0));
            r.remaining_ops -= rate * actual_dt_s;
            if r.remaining_ops <= 1e-6 {
                match r.phase {
                    Phase::Overhead => {
                        r.phase = Phase::Body;
                        r.remaining_ops = r.body_ops;
                        still_running.push(r);
                    }
                    Phase::Body => {
                        self.lg.emit(&Event::TaskEnd {
                            task: r.id,
                            worker: r.worker,
                            t_ns: now,
                            elapsed_ns: now.saturating_sub(r.started_ns),
                        });
                        self.tasks_done += 1;
                        self.ops_done += r.body_ops;
                        self.completions.push((r.tag, now));
                    }
                }
            } else {
                still_running.push(r);
            }
        }
        self.running = still_running;
        true
    }

    /// Runs until both the queue and the running set are empty. Returns a
    /// report covering exactly this call.
    pub fn run_until_idle(&mut self) -> SimRunReport {
        let t0 = self.clock.now_ns();
        let e0 = self.meter.energy_j();
        let tasks0 = self.tasks_done;
        let ops0 = self.ops_done;
        loop {
            self.fill_slots();
            if !self.step_running(u64::MAX) {
                break;
            }
        }
        // Close the power integral at idle.
        let idle_rates: Vec<f64> = Vec::new();
        self.sample_power(&idle_rates);
        SimRunReport {
            elapsed_ns: self.clock.now_ns() - t0,
            energy_j: self.meter.energy_j() - e0,
            tasks: self.tasks_done - tasks0,
            ops: self.ops_done - ops0,
        }
    }

    /// Runs until virtual time `t_end_ns`, leaving unfinished work in
    /// place: queued tasks stay queued and running tasks keep their
    /// progress, resuming on the next call. The clock lands exactly on
    /// `t_end_ns` (idling through any work-free tail), which is what lets
    /// a tenant's machine advance in lockstep with an external
    /// authoritative clock instead of running ahead through its backlog.
    /// Returns a report covering exactly this call. A no-op if the clock
    /// is already at or past `t_end_ns`.
    pub fn run_until(&mut self, t_end_ns: u64) -> SimRunReport {
        let t0 = self.clock.now_ns();
        let e0 = self.meter.energy_j();
        let tasks0 = self.tasks_done;
        let ops0 = self.ops_done;
        while self.clock.now_ns() < t_end_ns {
            self.fill_slots();
            let budget_ns = t_end_ns - self.clock.now_ns();
            if !self.step_running(budget_ns) {
                // No runnable work: close the integral at this instant
                // (the meter credits the *previous* power over each span,
                // and the last sample was taken before the final task
                // drained), then idle to the boundary.
                let idle_rates: Vec<f64> = Vec::new();
                self.sample_power(&idle_rates);
                self.clock.advance_by(budget_ns);
                self.sample_power(&idle_rates);
            }
        }
        // Close the power integral at the boundary state.
        let rates = self.current_rates();
        self.sample_power(&rates);
        SimRunReport {
            elapsed_ns: self.clock.now_ns() - t0,
            energy_j: self.meter.energy_j() - e0,
            tasks: self.tasks_done - tasks0,
            ops: self.ops_done - ops0,
        }
    }

    /// Advances the simulation by exactly one rate-change boundary: fills
    /// free slots from the queue, then steps to the earliest phase
    /// completion. Returns `false` when there was nothing to run — the
    /// hook an *external* scheduler (one that withholds tasks until their
    /// dependencies resolve, like the DAG driver) uses to interleave its
    /// own release decisions with the fluid model. Completions land in
    /// [`SimRuntime::take_completions`].
    pub fn step_boundary(&mut self) -> bool {
        self.fill_slots();
        self.step_running(u64::MAX)
    }

    /// Runs toward `t_end_ns` but returns at the first task completion,
    /// leaving the clock at the completion instant. This is the lockstep
    /// hook for external dependency tracking: a DAG driver can release
    /// successors the moment their predecessor finishes and still land
    /// exactly on `t_end_ns` (idling through any work-free tail) without
    /// ever running past it — [`SimRuntime::step_boundary`] overshoots an
    /// external deadline, [`SimRuntime::run_until`] batches completions
    /// until the boundary and stalls dependency releases. Returns `true`
    /// if a completion occurred before the boundary.
    pub fn run_until_event(&mut self, t_end_ns: u64) -> bool {
        let baseline = self.completions.len();
        while self.clock.now_ns() < t_end_ns {
            self.fill_slots();
            let budget_ns = t_end_ns - self.clock.now_ns();
            if !self.step_running(budget_ns) {
                let idle_rates: Vec<f64> = Vec::new();
                self.sample_power(&idle_rates);
                self.clock.advance_by(budget_ns);
                self.sample_power(&idle_rates);
            }
            if self.completions.len() > baseline {
                return true;
            }
        }
        // Close the power integral at the boundary state, as run_until
        // does — the next caller may idle for a long span.
        let rates = self.current_rates();
        self.sample_power(&rates);
        false
    }

    /// Drains the `(tag, completion time ns)` log of tasks finished since
    /// the last call, in completion order (ties in task-list order).
    pub fn take_completions(&mut self) -> Vec<(u64, u64)> {
        std::mem::take(&mut self.completions)
    }

    /// Tasks queued but not yet started plus tasks in progress — the
    /// tenant-side backlog signal.
    pub fn backlog(&self) -> usize {
        self.queue.len() + self.running.len()
    }

    /// Advances virtual time by `dt_ns` with the machine idle (between
    /// phases, settle windows). Idle power is still consumed.
    pub fn idle_for(&mut self, dt_ns: u64) {
        assert!(
            self.running.is_empty() && self.queue.is_empty(),
            "idle_for while work pending"
        );
        self.clock.advance_by(dt_ns);
        let idle_w = self.spec.power.power(0, 0.0);
        self.meter.sample(self.clock.now_ns(), idle_w);
        self.energy_gauge
            .store(self.meter.energy_j().to_bits(), Ordering::Relaxed);
        self.power_gauge.store(idle_w.to_bits(), Ordering::Relaxed);
    }
}

impl std::fmt::Debug for SimRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimRuntime")
            .field("cores", &self.spec.cores)
            .field("cap", &self.effective_cap())
            .field("queued", &self.queue.len())
            .field("tasks_done", &self.tasks_done)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_metrics::PowerModel;

    fn machine(cores: usize, flops: f64, bw: f64) -> MachineSpec {
        MachineSpec {
            cores,
            core_flops: flops,
            mem_bw: bw,
            power: PowerModel::new(10.0, 2.0),
            sched_overhead_ns: 0,
            stall_intensity: 0.5,
        }
    }

    #[test]
    fn single_compute_task_timing_exact() {
        let mut sim = SimRuntime::new(machine(4, 1e9, 1e12));
        sim.submit(SimTask::new("t", 1e6, 0.0)); // 1e6 ops @ 1e9 ops/s = 1 ms
        let r = sim.run_until_idle();
        assert_eq!(r.tasks, 1);
        assert!(
            (r.elapsed_ns as f64 - 1e6).abs() < 10.0,
            "elapsed {}",
            r.elapsed_ns
        );
    }

    #[test]
    fn compute_bound_scales_linearly() {
        let run_with_cap = |cap: usize| {
            let mut sim = SimRuntime::new(machine(8, 1e9, 1e15));
            sim.set_cap(cap);
            sim.submit_all((0..64).map(|_| SimTask::new("c", 1e7, 0.0)));
            sim.run_until_idle().elapsed_ns as f64
        };
        let t1 = run_with_cap(1);
        let t4 = run_with_cap(4);
        let t8 = run_with_cap(8);
        assert!((t1 / t4 - 4.0).abs() < 0.05, "4-way speedup {}", t1 / t4);
        assert!((t1 / t8 - 8.0).abs() < 0.05, "8-way speedup {}", t1 / t8);
    }

    #[test]
    fn memory_bound_saturates_at_knee() {
        // bpo = 8, bw = 2e9, flops = 1e9 → knee at 0.25 cores... choose
        // bw = 4e9, bpo = 1 → knee at 4 cores.
        let run_with_cap = |cap: usize| {
            let mut sim = SimRuntime::new(machine(16, 1e9, 4e9));
            sim.set_cap(cap);
            sim.submit_all((0..64).map(|_| SimTask::new("m", 1e7, 1e7)));
            sim.run_until_idle().elapsed_ns as f64
        };
        let t2 = run_with_cap(2);
        let t4 = run_with_cap(4);
        let t8 = run_with_cap(8);
        let t16 = run_with_cap(16);
        assert!(t2 / t4 > 1.9, "should still scale to the knee: {}", t2 / t4);
        assert!(
            (t8 / t4 - 1.0).abs() < 0.02,
            "past the knee should be flat: {}",
            t8 / t4
        );
        assert!((t16 / t4 - 1.0).abs() < 0.02);
    }

    #[test]
    fn energy_minimum_below_max_cores_for_memory_bound() {
        // Past the knee, more cores burn power without adding throughput,
        // so energy for fixed work rises with the cap.
        let energy_with_cap = |cap: usize| {
            let mut sim = SimRuntime::new(machine(16, 1e9, 4e9));
            sim.set_cap(cap);
            sim.submit_all((0..64).map(|_| SimTask::new("m", 1e7, 1e7)));
            sim.run_until_idle().energy_j
        };
        let e4 = energy_with_cap(4); // at the knee
        let e16 = energy_with_cap(16); // far past it
        assert!(
            e16 > e4 * 1.2,
            "energy at 16 cores {e16} should exceed at-knee {e4}"
        );
    }

    #[test]
    fn power_never_below_idle() {
        let mut sim = SimRuntime::new(machine(4, 1e9, 1e9));
        sim.submit_all((0..10).map(|_| SimTask::new("t", 1e6, 1e6)));
        let r = sim.run_until_idle();
        assert!(
            r.mean_power_w() >= 10.0 - 1e-9,
            "mean power {}",
            r.mean_power_w()
        );
    }

    #[test]
    fn cap_changes_take_effect_at_task_boundaries() {
        let mut sim = SimRuntime::new(machine(8, 1e9, 1e15));
        sim.set_cap(8);
        sim.submit_all((0..8).map(|_| SimTask::new("a", 1e6, 0.0)));
        sim.run_until_idle();
        sim.set_cap(2);
        sim.submit_all((0..8).map(|_| SimTask::new("b", 1e6, 0.0)));
        let r = sim.run_until_idle();
        // 8 tasks, 2 at a time, 1 ms each → 4 ms.
        assert!(
            (r.elapsed_ns as f64 - 4e6).abs() < 100.0,
            "elapsed {}",
            r.elapsed_ns
        );
    }

    #[test]
    fn deterministic_repeat_runs() {
        let run = || {
            let mut sim = SimRuntime::new(machine(8, 1e9, 4e9));
            sim.submit_all((0..32).map(|i| SimTask::new("t", 1e6 + i as f64 * 1e4, 5e5)));
            let r = sim.run_until_idle();
            (r.elapsed_ns, r.energy_j.to_bits(), r.tasks)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn events_flow_to_profiles() {
        let mut sim = SimRuntime::new(machine(4, 1e9, 1e12));
        sim.submit_all((0..5).map(|_| SimTask::new("profiled", 2e6, 0.0)));
        sim.run_until_idle();
        let prof = sim.lg().profiles().get("profiled").unwrap();
        assert_eq!(prof.count, 5);
        assert!((prof.mean_ns - 2e6).abs() < 10.0, "mean {}", prof.mean_ns);
    }

    #[test]
    fn sched_overhead_penalizes_tiny_tasks() {
        let mk = |overhead: u64| MachineSpec {
            cores: 4,
            core_flops: 1e9,
            mem_bw: 1e15,
            power: PowerModel::new(10.0, 2.0),
            sched_overhead_ns: overhead,
            stall_intensity: 0.5,
        };
        // Same total work, decomposed 1000× finer.
        let run = |ntasks: usize, overhead: u64| {
            let mut sim = SimRuntime::new(mk(overhead));
            sim.set_cap(1);
            let ops_each = 1e9 / ntasks as f64;
            sim.submit_all((0..ntasks).map(|_| SimTask::new("g", ops_each, 0.0)));
            sim.run_until_idle().elapsed_ns
        };
        let coarse = run(10, 2_000);
        let fine = run(10_000, 2_000);
        assert!(
            fine as f64 > coarse as f64 * 1.015,
            "fine-grained should pay overhead: {fine} vs {coarse}"
        );
        let no_overhead_fine = run(10_000, 0);
        assert!((no_overhead_fine as f64 / 1e9 - 1.0).abs() < 0.01);
    }

    #[test]
    fn run_until_event_stops_at_first_completion() {
        let mut sim = SimRuntime::new(machine(4, 1e9, 1e12));
        sim.submit(SimTask::new("a", 1e6, 0.0).with_tag(1)); // 1 ms
        sim.submit(SimTask::new("b", 3e6, 0.0).with_tag(2)); // 3 ms
                                                             // First event well before the 10 ms boundary.
        assert!(sim.run_until_event(10_000_000));
        let done = sim.take_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 1);
        assert!((sim.clock().now_ns() as f64 - 1e6).abs() < 10.0);
        // Second event at ~3 ms.
        assert!(sim.run_until_event(10_000_000));
        assert_eq!(sim.take_completions()[0].0, 2);
        // Nothing left: the clock idles exactly to the boundary.
        assert!(!sim.run_until_event(10_000_000));
        assert_eq!(sim.clock().now_ns(), 10_000_000);
    }

    #[test]
    fn run_until_event_never_passes_the_boundary() {
        let mut sim = SimRuntime::new(machine(4, 1e9, 1e12));
        sim.submit(SimTask::new("long", 5e6, 0.0).with_tag(7)); // 5 ms
                                                                // The task would complete at 5 ms; the boundary is 2 ms.
        assert!(!sim.run_until_event(2_000_000));
        assert_eq!(sim.clock().now_ns(), 2_000_000);
        assert!(sim.take_completions().is_empty());
        // Progress was retained: the remainder finishes at ~5 ms.
        assert!(sim.run_until_event(10_000_000));
        assert!((sim.clock().now_ns() as f64 - 5e6).abs() < 10.0);
    }

    #[test]
    fn idle_consumes_idle_power() {
        let mut sim = SimRuntime::new(machine(4, 1e9, 1e9));
        let e0 = sim.total_energy_j();
        sim.idle_for(1_000_000_000); // 1 s
        let de = sim.total_energy_j() - e0;
        assert!((de - 10.0).abs() < 1e-6, "idle energy {de}");
    }

    #[test]
    fn knob_registered_on_instance() {
        let sim = SimRuntime::new(machine(8, 1e9, 1e9));
        assert_eq!(sim.lg().knobs().value("thread_cap"), Some(8));
        sim.lg().knobs().set("thread_cap", 3);
        assert_eq!(sim.cap_knob().get(), 3);
    }

    #[test]
    fn dvfs_slows_compute_proportionally() {
        let run_at = |f: f64| {
            let mut sim = SimRuntime::new(machine(4, 1e9, 1e15));
            sim.set_freq(f);
            sim.submit_all((0..8).map(|_| SimTask::new("c", 1e7, 0.0)));
            sim.run_until_idle().elapsed_ns as f64
        };
        let full = run_at(1.0);
        let half = run_at(0.5);
        assert!((half / full - 2.0).abs() < 0.02, "ratio {}", half / full);
    }

    #[test]
    fn dvfs_free_lunch_on_bandwidth_bound_work() {
        // Past the knee, halving frequency must not reduce throughput but
        // must cut energy — the DVFS counterpart of throttling.
        let run_at = |f: f64| {
            let mut sim = SimRuntime::new(machine(16, 1e9, 2e9)); // knee at 2 cores for bpo 1
            sim.set_cap(8);
            sim.set_freq(f);
            sim.submit_all((0..64).map(|_| SimTask::new("m", 1e7, 1e7)));
            let r = sim.run_until_idle();
            (r.elapsed_ns as f64, r.energy_j)
        };
        let (t_full, e_full) = run_at(1.0);
        let (t_half, e_half) = run_at(0.5);
        assert!(
            (t_half / t_full - 1.0).abs() < 0.05,
            "throughput lost: {} vs {}",
            t_half,
            t_full
        );
        assert!(
            e_half < e_full * 0.85,
            "energy not saved: {e_half} vs {e_full}"
        );
    }

    #[test]
    fn freq_knob_registered_and_bounded() {
        let sim = SimRuntime::new(machine(4, 1e9, 1e9));
        assert_eq!(sim.lg().knobs().value("freq_permille"), Some(1000));
        sim.lg().knobs().set("freq_permille", 100); // below min → clamped
        assert_eq!(sim.freq_knob().get(), 200);
        sim.set_freq(0.75);
        assert!((sim.freq_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn report_throughput_math() {
        let mut sim = SimRuntime::new(machine(2, 1e9, 1e15));
        sim.submit_all((0..4).map(|_| SimTask::new("t", 5e8, 0.0)));
        let r = sim.run_until_idle();
        // 4 × 0.5s of work on 2 cores = 1 s; 2e9 ops total.
        assert!((r.elapsed_s() - 1.0).abs() < 1e-3);
        assert!((r.ops_per_sec() - 2e9).abs() < 1e7);
    }

    #[test]
    fn energy_and_power_ride_in_snapshots() {
        let mut sim = SimRuntime::new(machine(4, 1e9, 1e12));
        let energy = sim.lg().introspection().metric_id("sim.energy_j").unwrap();
        let before = sim.lg().snapshot();
        sim.submit_all((0..8).map(|_| SimTask::new("t", 1e8, 0.0)));
        let r = sim.run_until_idle();
        let after = sim.lg().snapshot();
        let de = after.value(energy).unwrap() - before.value(energy).unwrap();
        assert!(
            (de - r.energy_j).abs() < 1e-9,
            "gauge delta {de} vs report {}",
            r.energy_j
        );
        assert!(after.value_by_name("sim.power_w").unwrap() > 0.0);
    }

    #[test]
    fn thread_cap_space_derives_pow2_lattice_from_registry() {
        let sim = SimRuntime::new(machine(8, 1e9, 1e9));
        let space = sim.lg().knobs().space_for(&["thread_cap"]);
        assert_eq!(space.dims()[0].all_values(), &[1, 2, 4, 8]);
    }

    #[test]
    fn step_boundary_drives_tagged_completions() {
        let mut sim = SimRuntime::new(machine(2, 1e9, 1e15));
        // 2 cores, 3 tasks: tags 7 and 8 run first (1 ms, 2 ms), tag 9
        // starts when 7 finishes and ends at 1 ms + 3 ms = 4 ms.
        sim.submit(SimTask::new("a", 1e6, 0.0).with_tag(7));
        sim.submit(SimTask::new("b", 2e6, 0.0).with_tag(8));
        sim.submit(SimTask::new("c", 3e6, 0.0).with_tag(9));
        while sim.step_boundary() {}
        let done = sim.take_completions();
        let tags: Vec<u64> = done.iter().map(|&(tag, _)| tag).collect();
        assert_eq!(tags, vec![7, 8, 9]);
        assert!((done[0].1 as f64 - 1e6).abs() < 10.0);
        assert!((done[1].1 as f64 - 2e6).abs() < 10.0);
        assert!((done[2].1 as f64 - 4e6).abs() < 10.0);
        assert!(sim.take_completions().is_empty(), "log drained");
        assert!(!sim.step_boundary(), "idle runtime reports no work");
    }

    #[test]
    fn run_until_lands_exactly_on_boundary() {
        let mut sim = SimRuntime::new(machine(4, 1e9, 1e12));
        // 1 ms of work, stepped to a 0.3 ms boundary: clock must stop
        // exactly there with the task still in flight.
        sim.submit(SimTask::new("t", 1e6, 0.0));
        let r = sim.run_until(300_000);
        assert_eq!(sim.clock().now_ns(), 300_000);
        assert_eq!(r.elapsed_ns, 300_000);
        assert_eq!(r.tasks, 0);
        assert_eq!(sim.backlog(), 1);
        // Idle boundary: no work at all still advances the clock.
        let mut idle = SimRuntime::new(machine(4, 1e9, 1e12));
        idle.run_until(500_000);
        assert_eq!(idle.clock().now_ns(), 500_000);
    }

    #[test]
    fn run_until_conserves_work_and_energy_vs_one_shot() {
        let make = || {
            let mut sim = SimRuntime::new(machine(4, 1e9, 1e12));
            sim.submit_all((0..16).map(|_| SimTask::new("t", 1e6, 0.0)));
            sim
        };
        let mut whole = make();
        let r_whole = whole.run_until_idle();
        let mut stepped = make();
        let mut tasks = 0;
        // Step in uneven slices past the one-shot's finish time.
        for t in [100_000u64, 1_000_000, 1_234_567, 9_000_000] {
            tasks += stepped.run_until(t).tasks;
        }
        assert_eq!(tasks, r_whole.tasks);
        assert_eq!(stepped.backlog(), 0);
        // Same work completed at the same times: energy up to the one-shot
        // finish matches; the stepped run then idles to 9 ms, adding only
        // idle power (10 W) for the remainder.
        let idle_tail_j = (9_000_000 - r_whole.elapsed_ns) as f64 * 1e-9 * 10.0;
        let total = stepped.total_energy_j();
        assert!(
            (total - (r_whole.energy_j + idle_tail_j)).abs() < 1e-6,
            "stepped {total} vs one-shot {} + idle tail {idle_tail_j}",
            r_whole.energy_j
        );
    }

    #[test]
    fn run_until_honors_cap_changes_between_slices() {
        // 8 cores, cap dropped to 2 half-way. Running tasks are never
        // preempted, but everything still queued must trickle out 2-wide.
        let mut sim = SimRuntime::new(machine(8, 1e9, 1e15));
        sim.submit_all((0..16).map(|_| SimTask::new("t", 1e7, 0.0)));
        // First wave of 8 × 10 ms tasks is in flight; 8 more are queued.
        sim.run_until(5_000_000);
        sim.set_cap(2);
        let r = sim.run_until_idle();
        // First wave finishes at 10 ms (5 ms into the tail); the queued 8
        // then run 2 at a time: 4 rounds × 10 ms = 40 ms. Tail = 45 ms.
        assert!(
            (r.elapsed_ns as f64 - 45e6).abs() < 1e4,
            "tail took {} ns",
            r.elapsed_ns
        );
        assert_eq!(sim.total_tasks(), 16);
    }
}
