//! Generic discrete-event queue with deterministic ordering.
//!
//! Events are ordered by `(t_ns, seq)` where `seq` is a monotone insertion
//! counter — simultaneous events pop in insertion order, which is what
//! makes whole-simulation runs bit-reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimEvent<T> {
    /// Virtual time at which the event fires.
    pub t_ns: u64,
    /// Insertion sequence (tie-break).
    pub seq: u64,
    /// Payload.
    pub payload: T,
}

/// Min-heap event queue keyed on `(t_ns, seq)`.
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
    payloads: Vec<Option<T>>,
    free: Vec<usize>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `t_ns`. Returns the event's sequence number.
    pub fn schedule(&mut self, t_ns: u64, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(i) => {
                self.payloads[i] = Some(payload);
                i
            }
            None => {
                self.payloads.push(Some(payload));
                self.payloads.len() - 1
            }
        };
        self.heap.push(Reverse((t_ns, seq, slot)));
        seq
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<SimEvent<T>> {
        let Reverse((t_ns, seq, slot)) = self.heap.pop()?;
        let payload = self.payloads[slot]
            .take()
            .expect("event slot already drained");
        self.free.push(slot);
        Some(SimEvent { t_ns, seq, payload })
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(7, ());
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
        q.pop().unwrap();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..10u64 {
            for i in 0..100 {
                q.schedule(round * 1000 + i, i);
            }
            for _ in 0..100 {
                q.pop().unwrap();
            }
        }
        // Payload storage must not grow past one round's worth.
        assert!(q.payloads.len() <= 100, "slots {}", q.payloads.len());
    }

    #[test]
    fn interleaved_schedule_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(10, 10u64);
        q.schedule(30, 30);
        let e = q.pop().unwrap();
        assert_eq!(e.t_ns, 10);
        q.schedule(20, 20);
        assert_eq!(q.pop().unwrap().payload, 20);
        assert_eq!(q.pop().unwrap().payload, 30);
    }
}
