//! The simulated machine: cores, roofline memory contention, power.
//!
//! The contention model is fluid max-min fairness over the shared memory
//! bandwidth. A running task with `bytes-per-op = b/o` would, unthrottled,
//! demand `(b/o) · core_flops` bytes/sec. If the sum of demands exceeds
//! the machine bandwidth, bandwidth is allocated max-min fairly
//! (water-filling): light consumers get all they ask for; heavy consumers
//! split the rest evenly. A task's achieved op rate is then
//! `min(core_flops, allocation / (b/o))`.
//!
//! This reproduces the roofline shape that concurrency throttling
//! exploits: compute-bound batches (`b/o → 0`) scale linearly to the core
//! count, while memory-bound batches saturate at
//! `mem_bw / bytes_per_op` ops/sec no matter how many cores burn power.

use lg_metrics::PowerModel;

/// Static description of the simulated machine.
#[derive(Clone, Copy, Debug)]
pub struct MachineSpec {
    /// Number of cores.
    pub cores: usize,
    /// Peak op rate of one core (ops/second).
    pub core_flops: f64,
    /// Shared memory bandwidth (bytes/second).
    pub mem_bw: f64,
    /// Package power model.
    pub power: PowerModel,
    /// Fixed scheduling overhead charged when a task starts (nanoseconds).
    pub sched_overhead_ns: u64,
    /// Dynamic-power floor of an *active but memory-stalled* core, as a
    /// fraction of full intensity in `[0, 1]`. Stalled cores are not idle:
    /// they spin on loads, keep caches and uncore busy, and on real parts
    /// burn roughly half their peak dynamic power. This floor is what
    /// makes running memory-bound work on too many cores cost energy —
    /// the effect concurrency throttling exists to harvest.
    pub stall_intensity: f64,
}

impl MachineSpec {
    /// A 32-core server-like machine: 1 Gop/s/core, 24 GB/s of shared
    /// bandwidth, 25 W idle + 4.5 W/core. The bandwidth knee for a
    /// 4-bytes-per-op workload sits at 6 cores — well below the core
    /// count, so throttling has room to win.
    pub fn server32() -> Self {
        Self {
            cores: 32,
            core_flops: 1e9,
            mem_bw: 24e9,
            power: PowerModel::server_socket(),
            sched_overhead_ns: 2_000,
            stall_intensity: 0.5,
        }
    }

    /// A small 8-core machine for quick tests.
    pub fn small8() -> Self {
        Self {
            cores: 8,
            core_flops: 1e9,
            mem_bw: 8e9,
            power: PowerModel::new(10.0, 3.0),
            sched_overhead_ns: 1_000,
            stall_intensity: 0.5,
        }
    }

    /// Validates the spec.
    ///
    /// # Panics
    /// Panics on non-positive rates or zero cores.
    pub fn validate(&self) {
        assert!(self.cores > 0, "machine needs at least one core");
        assert!(self.core_flops > 0.0, "core_flops must be positive");
        assert!(self.mem_bw > 0.0, "mem_bw must be positive");
        assert!(
            (0.0..=1.0).contains(&self.stall_intensity),
            "stall_intensity must be in [0, 1]"
        );
    }

    /// Effective power-model intensity of a core achieving `rate` ops/sec:
    /// interpolates between the stall floor and full intensity.
    pub fn effective_intensity(&self, rate: f64) -> f64 {
        let util = (rate / self.core_flops).clamp(0.0, 1.0);
        self.stall_intensity + (1.0 - self.stall_intensity) * util
    }

    /// The core count at which a workload with the given bytes/op
    /// saturates memory bandwidth (continuous; may exceed `cores`).
    pub fn bandwidth_knee(&self, bytes_per_op: f64) -> f64 {
        if bytes_per_op <= 0.0 {
            return f64::INFINITY;
        }
        self.mem_bw / (bytes_per_op * self.core_flops)
    }
}

/// Max-min fair allocation of op rates for running tasks.
///
/// `bytes_per_op[i]` is task i's traffic intensity; the return value is
/// each task's achieved op rate (ops/sec). See module docs for the model.
pub fn alloc_rates(spec: &MachineSpec, bytes_per_op: &[f64]) -> Vec<f64> {
    let n = bytes_per_op.len();
    if n == 0 {
        return Vec::new();
    }
    // Unconstrained bandwidth demand per task.
    let demands: Vec<f64> = bytes_per_op
        .iter()
        .map(|&b| b.max(0.0) * spec.core_flops)
        .collect();
    let total: f64 = demands.iter().sum();
    if total <= spec.mem_bw {
        return bytes_per_op.iter().map(|_| spec.core_flops).collect();
    }
    // Water-filling: sort by demand ascending; satisfy light tasks fully,
    // split the remainder among the rest.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        demands[a]
            .partial_cmp(&demands[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut alloc = vec![0.0f64; n];
    let mut remaining_bw = spec.mem_bw;
    let mut remaining = n;
    for &i in &order {
        let fair = remaining_bw / remaining as f64;
        let a = demands[i].min(fair);
        alloc[i] = a;
        remaining_bw -= a;
        remaining -= 1;
    }
    // Convert allocations back to op rates.
    (0..n)
        .map(|i| {
            let b = bytes_per_op[i].max(0.0);
            if b == 0.0 {
                spec.core_flops
            } else {
                (alloc[i] / b).min(spec.core_flops)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(cores: usize, flops: f64, bw: f64) -> MachineSpec {
        MachineSpec {
            cores,
            core_flops: flops,
            mem_bw: bw,
            power: PowerModel::new(10.0, 2.0),
            sched_overhead_ns: 0,
            stall_intensity: 0.5,
        }
    }

    #[test]
    fn compute_bound_tasks_run_at_peak() {
        let s = spec(8, 1e9, 1e9);
        let rates = alloc_rates(&s, &[0.0, 0.0, 0.0]);
        assert!(rates.iter().all(|&r| r == 1e9));
    }

    #[test]
    fn single_memory_task_capped_by_bandwidth() {
        // bytes/op = 10, bw = 1e9 → max 1e8 ops/sec even though core does 1e9.
        let s = spec(8, 1e9, 1e9);
        let rates = alloc_rates(&s, &[10.0]);
        assert!((rates[0] - 1e8).abs() < 1.0);
    }

    #[test]
    fn identical_memory_tasks_split_bandwidth_evenly() {
        let s = spec(8, 1e9, 4e9);
        // Each task demands 10 * 1e9 = 1e10 B/s; four tasks share 4e9 B/s.
        let rates = alloc_rates(&s, &[10.0; 4]);
        for r in &rates {
            assert!((r - 1e8).abs() < 1.0, "rate {r}");
        }
    }

    #[test]
    fn light_task_unharmed_by_heavy_neighbors() {
        let s = spec(8, 1e9, 2e9);
        // Task 0 demands 0.5e9 B/s (bpo 0.5); tasks 1,2 demand 1e10 each.
        let rates = alloc_rates(&s, &[0.5, 10.0, 10.0]);
        assert!(
            (rates[0] - 1e9).abs() < 1.0,
            "light task should hit peak: {}",
            rates[0]
        );
        // Heavies split the remaining 1.5e9 B/s → 0.75e9 each → 7.5e7 ops/s.
        assert!((rates[1] - 7.5e7).abs() < 1.0);
        assert!((rates[2] - 7.5e7).abs() < 1.0);
    }

    #[test]
    fn total_allocated_bandwidth_never_exceeds_machine() {
        let s = spec(16, 1e9, 5e9);
        for case in [vec![1.0; 16], vec![0.1, 4.0, 8.0, 2.0], vec![100.0; 3]] {
            let rates = alloc_rates(&s, &case);
            let used: f64 = rates.iter().zip(&case).map(|(r, b)| r * b).sum();
            assert!(used <= s.mem_bw * 1.0001, "used {used} > bw {}", s.mem_bw);
        }
    }

    #[test]
    fn rates_never_exceed_core_peak() {
        let s = spec(4, 2e9, 1e12);
        let rates = alloc_rates(&s, &[0.0, 0.001, 5.0]);
        assert!(rates.iter().all(|&r| r <= 2e9 + 1.0));
    }

    #[test]
    fn empty_input_empty_output() {
        let s = spec(4, 1e9, 1e9);
        assert!(alloc_rates(&s, &[]).is_empty());
    }

    #[test]
    fn bandwidth_knee_location() {
        let s = spec(32, 1e9, 24e9);
        // 4 bytes/op → knee at 24e9 / (4 * 1e9) = 6 cores.
        assert!((s.bandwidth_knee(4.0) - 6.0).abs() < 1e-9);
        assert_eq!(s.bandwidth_knee(0.0), f64::INFINITY);
    }

    #[test]
    fn aggregate_throughput_saturates_with_cores() {
        // The roofline shape: total ops/sec vs active tasks flattens at knee.
        let s = spec(32, 1e9, 8e9);
        let bpo = 4.0; // knee at 2 cores
        let total = |k: usize| -> f64 { alloc_rates(&s, &vec![bpo; k]).iter().sum() };
        let t1 = total(1);
        let t2 = total(2);
        let t4 = total(4);
        let t16 = total(16);
        assert!(t2 > t1 * 1.9, "should scale before the knee");
        assert!((t4 - t2).abs() < t2 * 0.01, "should be flat past the knee");
        assert!((t16 - t2).abs() < t2 * 0.01);
    }

    #[test]
    fn presets_validate() {
        MachineSpec::server32().validate();
        MachineSpec::small8().validate();
    }
}
