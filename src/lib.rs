//! # looking-glass — from performance observation to dynamic adaptation
//!
//! Facade crate re-exporting the whole `looking-glass` workspace: an
//! autonomic performance environment for task-parallel runtimes, built as a
//! from-scratch reproduction of the HPDC 2015 paper *"Through the
//! Looking-Glass: From Performance Observation to Dynamic Adaptation"*.
//!
//! The three layers (see `DESIGN.md` for the full architecture):
//!
//! 1. **Observation** ([`core`]) — inline task lifecycle events, sampled
//!    counters, and a pluggable listener pipeline.
//! 2. **Introspection** ([`metrics`], [`core`]) — per-task profiles,
//!    sliding-window statistics, power/energy accounting.
//! 3. **Adaptation** ([`core`], [`tuning`]) — a policy engine that reads
//!    introspection state and actuates runtime knobs (thread cap, task
//!    granularity, parcel coalescing window) using online search.
//!
//! Substrates built for the reproduction: a work-stealing task runtime
//! ([`runtime`]), a deterministic discrete-event simulated machine
//! ([`sim`]), a parcel transport with coalescing ([`net`]), and the
//! benchmark workloads ([`workloads`]).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```
//! use looking_glass::core::LookingGlass;
//!
//! let lg = LookingGlass::builder().build();
//! {
//!     let _t = lg.timer("my_task");
//!     // ... work ...
//! }
//! let profiles = lg.profiles().snapshot();
//! assert_eq!(profiles.iter().find(|p| p.name == "my_task").unwrap().count, 1);
//! ```

pub use lg_core as core;
pub use lg_metrics as metrics;
pub use lg_net as net;
pub use lg_runtime as runtime;
pub use lg_sim as sim;
pub use lg_tuning as tuning;
pub use lg_workloads as workloads;
